"""Shared machinery of the CPA family: problem, allocation loop, mapping.

The two-step pattern of Section III-B:

1. **Allocation** — decide ``p_v`` for every moldable task.  CPA grows, one
   processor at a time, the allocation of the critical-path task with the
   best gain, until the critical path ``T_CP`` no longer exceeds the average
   area ``T_A = (1/P) * sum_v T(v, p_v) * p_v``.  MCPA adds the
   precedence-level constraint (the allocations of one level may not exceed
   ``P`` in total).  Both are instances of :func:`allocate` differing only
   in the ``may_grow`` predicate.

2. **Mapping** — list-schedule the allocated tasks: ready tasks by
   descending bottom level, each onto the ``p_v`` hosts giving the earliest
   finish time, accounting for redistribution costs between allocations.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.model import Schedule
from repro.dag.graph import TaskGraph
from repro.dag.moldable import SpeedupModel, execution_time
from repro.errors import SchedulingError
from repro.platform.model import Platform
from repro.platform.network import CommModel
from repro.simulate.executor import Mapping, SimResult, simulate_mapping

__all__ = ["MTaskProblem", "Allocation", "allocate", "map_allocation", "MTaskResult"]


@dataclass(frozen=True)
class MTaskProblem:
    """A moldable-task scheduling instance on a homogeneous cluster."""

    graph: TaskGraph
    platform: Platform
    model: SpeedupModel

    def __post_init__(self) -> None:
        if not self.platform.is_homogeneous():
            raise SchedulingError(
                "the CPA family targets homogeneous clusters; "
                f"platform {self.platform.name!r} mixes host speeds")
        if len(self.graph) == 0:
            raise SchedulingError("empty task graph")

    @property
    def total_procs(self) -> int:
        return self.platform.size

    @property
    def speed(self) -> float:
        return self.platform.hosts[0].speed

    def exec_time(self, task_id: str, p: int) -> float:
        """``T(v, p)`` under the problem's speedup model."""
        return execution_time(self.graph.node(task_id).work, p, self.model,
                              speed=self.speed)


@dataclass
class Allocation:
    """Processor counts per task, with the CPA bookkeeping quantities."""

    procs: dict[str, int]
    iterations: int = 0

    def __getitem__(self, task_id: str) -> int:
        return self.procs[task_id]

    def total(self) -> int:
        return sum(self.procs.values())


def critical_path_length(problem: MTaskProblem, procs: dict[str, int]) -> float:
    """``T_CP`` under the given allocation (no communication terms, as in CPA)."""
    bl = problem.graph.bottom_levels(lambda v: problem.exec_time(v, procs[v]))
    return max((bl[s] for s in problem.graph.sources()), default=0.0)


def average_area(problem: MTaskProblem, procs: dict[str, int]) -> float:
    """``T_A = (1/P) sum_v T(v, p_v) p_v``."""
    total = sum(problem.exec_time(v, p) * p for v, p in procs.items())
    return total / problem.total_procs


def allocate(
    problem: MTaskProblem,
    may_grow: Callable[[str, dict[str, int]], bool] | None = None,
) -> Allocation:
    """The CPA allocation loop with a pluggable growth constraint.

    Starting from one processor each, repeatedly give one more processor to
    the critical-path task whose execution time decreases the most, while
    ``T_CP > T_A``.  ``may_grow(task, procs)`` vetoes candidates (MCPA's
    per-level bound); when every critical-path task is vetoed or saturated
    the loop stops early.
    """
    graph = problem.graph
    P = problem.total_procs
    procs = {v: 1 for v in graph.task_ids}
    iterations = 0

    # Iteration bound: each step adds exactly one processor somewhere.
    max_iter = len(graph) * P + 1
    while iterations < max_iter:
        t_cp = critical_path_length(problem, procs)
        t_a = average_area(problem, procs)
        if t_cp <= t_a:
            break
        path, _ = graph.critical_path(lambda v: problem.exec_time(v, procs[v]))
        best: str | None = None
        best_gain = 0.0
        for v in path:
            if procs[v] >= P:
                continue
            if may_grow is not None and not may_grow(v, procs):
                continue
            gain = problem.exec_time(v, procs[v]) - problem.exec_time(v, procs[v] + 1)
            if gain > best_gain + 1e-15 or (best is None and gain > 0):
                best, best_gain = v, gain
        if best is None:
            break  # nothing on the critical path may grow
        procs[best] += 1
        iterations += 1
    return Allocation(procs, iterations)


def level_bounded_growth(problem: MTaskProblem) -> Callable[[str, dict[str, int]], bool]:
    """MCPA's constraint: a level's total allocation must stay <= P."""
    levels = problem.graph.precedence_levels()
    by_level: dict[int, list[str]] = {}
    for v, lv in levels.items():
        by_level.setdefault(lv, []).append(v)
    P = problem.total_procs

    def may_grow(task_id: str, procs: dict[str, int]) -> bool:
        level_total = sum(procs[u] for u in by_level[levels[task_id]])
        return level_total + 1 <= P

    return may_grow


@dataclass(frozen=True)
class MTaskResult:
    """Outcome of a two-step M-task scheduler."""

    algorithm: str
    allocation: Allocation
    mapping: Mapping
    sim: SimResult

    @property
    def schedule(self) -> Schedule:
        return self.sim.schedule

    @property
    def makespan(self) -> float:
        return self.sim.makespan


def map_allocation(
    problem: MTaskProblem,
    allocation: Allocation,
    *,
    algorithm: str = "cpa",
    hosts: tuple[int, ...] | None = None,
    include_transfers: bool = False,
) -> MTaskResult:
    """List-schedule an allocation onto (a subset of) the cluster's hosts.

    ``hosts`` restricts the usable processors (the CRA multi-DAG case study
    schedules each application inside its own share); allocations larger
    than the restricted set are clamped to it.
    """
    graph = problem.graph
    usable = tuple(hosts) if hosts is not None else tuple(
        h.index for h in problem.platform)
    if not usable:
        raise SchedulingError("no usable hosts")
    comm = CommModel(problem.platform)

    procs = {v: min(allocation[v], len(usable)) for v in graph.task_ids}
    bl = graph.bottom_levels(lambda v: problem.exec_time(v, procs[v]))

    host_free = {h: 0.0 for h in usable}
    finish: dict[str, float] = {}
    placed_hosts: dict[str, tuple[int, ...]] = {}
    mapping = Mapping(meta={"algorithm": algorithm,
                            "platform": problem.platform.name,
                            "procs": str(problem.total_procs)})

    pending_preds = {v: graph.in_degree(v) for v in graph.task_ids}
    ready = [v for v in graph.task_ids if pending_preds[v] == 0]
    while ready:
        # highest bottom level first (critical tasks early); id breaks ties
        ready.sort(key=lambda v: (-bl[v], v))
        v = ready.pop(0)
        p = procs[v]
        # earliest-available hosts
        candidates = sorted(usable, key=lambda h: (host_free[h], h))[:p]
        chosen = tuple(sorted(candidates))
        data_ready = 0.0
        for pred in graph.predecessors(v):
            delay = comm.group_time(placed_hosts[pred], chosen, graph.edge(pred, v).data)
            data_ready = max(data_ready, finish[pred] + delay)
        t0 = max(data_ready, max(host_free[h] for h in chosen))
        t1 = t0 + problem.exec_time(v, p)
        finish[v] = t1
        placed_hosts[v] = chosen
        for h in chosen:
            host_free[h] = t1
        mapping.place(v, chosen)
        for succ in graph.successors(v):
            pending_preds[succ] -= 1
            if pending_preds[succ] == 0:
                ready.append(succ)

    if len(mapping.placements) != len(graph):
        raise SchedulingError("mapping incomplete: cycle or bookkeeping bug")
    sim = simulate_mapping(graph, mapping, problem.platform, problem.model,
                           include_transfers=include_transfers)
    return MTaskResult(algorithm, allocation, mapping, sim)
