"""M-HEFT — HEFT generalized to moldable tasks on multi-clusters.

Jedule "was designed to help develop scheduling algorithms for
multiprocessor tasks on clusters and multi-clusters" (Section I), and the
authors' own algorithm line (N'takpé/Suter, Hunold/Rauber/Suter) schedules
*moldable* tasks on heterogeneous collections of homogeneous clusters.
This module implements that family's common core, usually called M-HEFT:

* tasks are prioritized by upward rank (average one-processor execution
  cost plus average communication, as in HEFT);
* per task, every candidate allocation is evaluated: for each cluster, the
  1, 2, 4, ..., |cluster| earliest-available processors (powers of two plus
  the full cluster — the standard pruning that keeps the search linear in
  cluster size);
* the allocation minimizing the earliest finish time wins; ties prefer
  fewer processors (less area for equal finish time).

Allocations never span clusters (a moldable task runs inside one switch),
which is exactly the constraint that makes multi-cluster Gantt views — one
band per cluster — the natural way to inspect these schedules.
"""

from __future__ import annotations

from repro.dag.graph import TaskGraph
from repro.dag.moldable import AmdahlModel, SpeedupModel, execution_time
from repro.errors import SchedulingError
from repro.obs import core as _obs
from repro.platform.model import Platform
from repro.platform.network import CommModel
from repro.simulate.executor import Mapping, SimResult, simulate_mapping

__all__ = ["mheft_schedule", "MHeftResult", "candidate_sizes"]


def candidate_sizes(cluster_size: int) -> tuple[int, ...]:
    """Allocation sizes tried per cluster: powers of two plus the full size."""
    sizes = []
    p = 1
    while p < cluster_size:
        sizes.append(p)
        p *= 2
    sizes.append(cluster_size)
    return tuple(sizes)


class MHeftResult:
    """Outcome of an M-HEFT run."""

    def __init__(self, mapping: Mapping, sim: SimResult,
                 ranks: dict[str, float]):
        self.mapping = mapping
        self.sim = sim
        self.ranks = ranks

    @property
    def schedule(self):
        return self.sim.schedule

    @property
    def makespan(self) -> float:
        return self.sim.makespan

    def allocation_of(self, task_id: str) -> tuple[int, ...]:
        return self.mapping.hosts_of(task_id)


@_obs.span("sched.mheft")
def mheft_schedule(
    graph: TaskGraph,
    platform: Platform,
    model: SpeedupModel | None = None,
    *,
    include_transfers: bool = False,
) -> MHeftResult:
    """Schedule a moldable-task DAG on a (possibly heterogeneous) multi-cluster."""
    if len(graph) == 0:
        raise SchedulingError("empty task graph")
    model = model or AmdahlModel()
    comm = CommModel(platform)

    # upward ranks with one-processor average costs
    mean_inv_speed = sum(1.0 / h.speed for h in platform) / platform.size
    ranks: dict[str, float] = {}
    for v in reversed(graph.topo_order()):
        w = graph.node(v).work * mean_inv_speed
        best = 0.0
        for s in graph.successors(v):
            best = max(best, comm.average_time(graph.edge(v, s).data) + ranks[s])
        ranks[v] = w + best

    host_free = {h.index: 0.0 for h in platform}
    finish: dict[str, float] = {}
    placed: dict[str, tuple[int, ...]] = {}
    mapping = Mapping(meta={"algorithm": "mheft", "platform": platform.name})

    order = sorted(graph.task_ids, key=lambda v: (-ranks[v], v))
    pending = {v: graph.in_degree(v) for v in graph.task_ids}
    # rank order is topological (ranks strictly decrease along edges)
    for v in order:
        if pending[v] != 0:
            raise SchedulingError(
                f"rank order placed {v!r} before a predecessor; "
                "edge costs must be non-negative")
        node = graph.node(v)
        best: tuple[float, int, float, tuple[int, ...]] | None = None
        for cluster in platform.clusters:
            by_avail = sorted(cluster.hosts, key=lambda h: (host_free[h.index],
                                                            h.index))
            for p in candidate_sizes(cluster.size):
                hosts = tuple(sorted(h.index for h in by_avail[:p]))
                data_ready = 0.0
                for pred in graph.predecessors(v):
                    delay = comm.group_time(placed[pred], hosts,
                                            graph.edge(pred, v).data)
                    data_ready = max(data_ready, finish[pred] + delay)
                est = max(data_ready, max(host_free[h] for h in hosts))
                eft = est + execution_time(node.work, p, model,
                                           speed=cluster.speed)
                key = (eft, p, est, hosts)
                if best is None or key < best:
                    best = key
        assert best is not None
        eft, p, est, hosts = best
        finish[v] = eft
        placed[v] = hosts
        for h in hosts:
            host_free[h] = eft
        mapping.place(v, hosts)
        for s in graph.successors(v):
            pending[s] -= 1

    sim = simulate_mapping(graph, mapping, platform, model,
                           include_transfers=include_transfers)
    return MHeftResult(mapping, sim, ranks)
