"""Online and OS-level schedulers: jobs arrive over time, decisions are
made without knowledge of the future.

Three families live here, all driven by :mod:`repro.simulate` and all
producing schedules renderable by every backend:

* :mod:`repro.sched.online.ospack` — preemptive single/multi-CPU policies
  (round-robin, SJF/SRPT, multilevel feedback queue, CFS-style fair
  scheduler) on the :class:`repro.simulate.preempt.PreemptiveCpuSim`
  substrate, producing slice-bearing schedules;
* :mod:`repro.sched.online.listsched` — non-preemptive online list
  scheduling on uniform machines with eligibility constraints, after
  Szalkai & Dósa's generalized parallel-machine model;
* :mod:`repro.sched.online.moldable` — multi-resource moldable job
  scheduling, after Perotin, Sun & Raghavan.

Every public entry point returns a :class:`repro.sched.result.SchedResult`;
the registry (:mod:`repro.sched.registry`) exposes all of them by name.
"""

from repro.sched.online.listsched import OnlineMachine, online_list_schedule
from repro.sched.online.moldable import moldable_list_schedule
from repro.sched.online.ospack import (
    cfs_schedule,
    mlfq_schedule,
    round_robin_schedule,
    sjf_schedule,
)

__all__ = [
    "OnlineMachine",
    "cfs_schedule",
    "mlfq_schedule",
    "moldable_list_schedule",
    "online_list_schedule",
    "round_robin_schedule",
    "sjf_schedule",
]
