"""Online list scheduling on uniform machines with eligibility constraints.

The generalized parallel-machine model of Szalkai & Dósa: ``m`` machines
with individual **speeds**, each carrying a **grade of service** (GoS)
level; a job of grade ``g`` may only run on machines whose grade is at most
``g`` (low grade = high capability — a premium machine serves everyone, a
budget machine only undemanding jobs).  Jobs arrive over time and must be
assigned *irrevocably on arrival* to an eligible machine; the classic
greedy list rule assigns each job to the eligible machine that completes it
earliest given the machine's speed and its current backlog.

The arrival events are driven through :class:`~repro.simulate.engine.SimEngine`
so the decision points are exactly the online model's: nothing about a job
is known before its release.

Job mapping from :class:`~repro.workloads.jobs.Job`: ``run_time`` is the
unit-speed processing requirement ``p_j`` (a machine of speed ``s`` runs it
in ``p_j / s``) and ``group`` supplies the job's GoS grade when eligibility
is enabled.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.model import Cluster, Configuration, Schedule, Task
from repro.errors import SchedulingError
from repro.obs import core as _obs
from repro.sched.metrics import flow_metrics
from repro.sched.result import SchedResult, base_metrics
from repro.simulate.engine import SimEngine

__all__ = ["OnlineMachine", "online_list_schedule"]


@dataclass(frozen=True, slots=True)
class OnlineMachine:
    """One machine of the platform: a speed and a grade-of-service level."""

    index: int
    speed: float = 1.0
    grade: int = 0

    def __post_init__(self) -> None:
        if self.speed <= 0 or not math.isfinite(self.speed):
            raise SchedulingError(
                f"machine {self.index}: speed must be finite and > 0, "
                f"got {self.speed}")
        if self.grade < 0:
            raise SchedulingError(
                f"machine {self.index}: grade must be >= 0, got {self.grade}")


def _platform(machines: int, speeds: Sequence[float] | None,
              grades: Sequence[int] | None, levels: int) -> list[OnlineMachine]:
    if speeds is not None:
        machines = len(speeds)   # an explicit speed vector defines the platform
    if machines < 1:
        raise SchedulingError(f"need >= 1 machine, got {machines}")
    if grades is not None and len(grades) != machines:
        raise SchedulingError(
            f"{len(grades)} grades for {machines} machines")
    if grades is None:
        # default GoS ladder: machine i gets grade i * levels // m, so the
        # first machines are premium (grade 0) and capability thins out
        grades = [i * levels // machines for i in range(machines)]
    return [OnlineMachine(i,
                          1.0 if speeds is None else float(speeds[i]),
                          int(grades[i]))
            for i in range(machines)]


def online_list_schedule(
    jobs: Iterable,
    *,
    machines: int = 4,
    speeds: Sequence[float] | None = None,
    grades: Sequence[int] | None = None,
    eligibility: str = "gos",
    levels: int = 2,
) -> SchedResult:
    """Greedy online list scheduling over uniform machines with GoS grades.

    ``eligibility="gos"`` restricts each job to machines whose grade does
    not exceed the job's (``Job.group % levels``); ``"all"`` disables the
    restriction (every machine is eligible — the plain uniform-machines
    setting).  Ties on completion time break toward the lower machine
    index, so the result is deterministic.  An explicit ``speeds`` vector
    defines the platform size, overriding ``machines``.
    """
    if eligibility not in ("gos", "all"):
        raise SchedulingError(
            f"unknown eligibility mode {eligibility!r} (want 'gos' or 'all')")
    if levels < 1:
        raise SchedulingError(f"need >= 1 GoS level, got {levels}")
    jobs = list(jobs)
    if not jobs:
        raise SchedulingError("empty job list")
    platform = _platform(machines, speeds, grades, levels)
    machines = len(platform)

    avail = [0.0] * machines            # when each machine drains its backlog
    assignments: list[tuple[object, OnlineMachine, float, float]] = []
    releases: list[float] = []
    completions: list[float] = []
    dedicated: list[float] = []
    engine = SimEngine()

    def job_grade(job) -> int:
        if eligibility == "all":
            return max(m.grade for m in platform)
        return int(getattr(job, "group", 0)) % levels

    def assign(job) -> None:
        grade = job_grade(job)
        eligible = [m for m in platform if m.grade <= grade]
        if not eligible:
            raise SchedulingError(
                f"job {job.id!r} (grade {grade}) has no eligible machine")
        p = float(job.run_time)
        now = engine.now
        best, best_finish = None, math.inf
        for m in eligible:
            finish = max(now, avail[m.index]) + p / m.speed
            if finish < best_finish:
                best, best_finish = m, finish
        start = max(now, avail[best.index])
        avail[best.index] = best_finish
        assignments.append((job, best, start, best_finish))
        releases.append(now)
        completions.append(best_finish)
        # best possible alone: the fastest eligible machine, immediately
        dedicated.append(p / max(m.speed for m in eligible))

    for job in sorted(jobs, key=lambda j: (float(j.submit_time), str(j.id))):
        engine.at(float(job.submit_time), lambda j=job: assign(j))

    with _obs.span("sched.online_list", jobs=len(jobs), machines=machines):
        engine.run()

    schedule = Schedule(meta={"scheduler": "online-list",
                              "eligibility": eligibility})
    schedule.add_cluster(Cluster("machines", machines,
                                 f"{machines} uniform machines"))
    for job, m, start, finish in sorted(assignments,
                                        key=lambda a: (a[2], str(a[0].id))):
        schedule.add_task(Task(
            str(job.id), "job", start, finish,
            [Configuration("machines", [(m.index, 1)])],
            {"job": str(job.id), "machine": str(m.index),
             "speed": f"{m.speed:g}", "grade": str(m.grade)}))

    loads = [avail[m.index] for m in platform]
    metrics = {
        **base_metrics(schedule),
        **flow_metrics(releases, completions, dedicated),
        "max_load": max(loads),
        "load_imbalance": (max(loads) / min(l for l in loads if l > 0)
                           if any(l > 0 for l in loads) else 1.0),
    }
    meta = {
        "machines": str(machines),
        "eligibility": eligibility,
        "levels": str(levels),
        "speeds": ",".join(f"{m.speed:g}" for m in platform),
        "grades": ",".join(str(m.grade) for m in platform),
    }
    return SchedResult("online-list", schedule, metrics, meta)
