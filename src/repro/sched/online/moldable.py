"""Multi-resource moldable job scheduling, after Perotin, Sun & Raghavan.

Moldable jobs choose their processor allocation **once, at start time**
(unlike rigid jobs, whose width is fixed; unlike malleable jobs, which can
be resized mid-run).  In the multi-resource model each job additionally
carries a demand vector over secondary resources — here a **memory**
demand that must fit alongside the processor allocation.

Model realized by :func:`moldable_list_schedule`:

* the platform has ``procs`` identical processors and ``mem_capacity``
  units of memory;
* a job of maximum useful width ``m_j = Job.nodes`` and total work
  ``w_j = run_time * nodes`` (processor-seconds) runs on any allocation
  ``p`` with ``ceil(alpha * m_j) <= p <= m_j`` in time ``w_j / p`` (linear
  speedup up to its width — the simplification the paper's general
  ``t_j(p)`` admits as its best case);
* the memory demand is part of the allocation vector decided at start
  time, ``p * mem_per_proc`` — so memory is a genuine second capacity
  that can bind before processors do (the default capacity is sized at
  three quarters of the processor capacity for exactly that reason);
* ``cap`` bounds any single allocation to ``ceil(cap * procs)`` — the
  allocation-reduction knob the paper uses to keep one wide job from
  walling off the machine.

Scheduling is event-driven online **list scheduling**: at every release or
completion event the pending queue is scanned in FIFO order and every job
whose minimum allocation and memory demand both fit is started with the
largest allocation currently possible.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.core.model import Cluster, Configuration, Schedule, Task, hosts_to_ranges
from repro.errors import SchedulingError
from repro.obs import core as _obs
from repro.sched.metrics import flow_metrics
from repro.sched.result import SchedResult, base_metrics
from repro.simulate.engine import SimEngine

__all__ = ["moldable_list_schedule"]


def moldable_list_schedule(
    jobs: Iterable,
    *,
    procs: int = 32,
    mem_capacity: float | None = None,
    mem_per_proc: float = 1.0,
    alpha: float = 0.5,
    cap: float = 1.0,
) -> SchedResult:
    """Online multi-resource moldable list scheduling.

    ``alpha`` is the minimum allocation fraction (a job may shrink to
    ``ceil(alpha * m_j)`` processors but no further); ``cap`` the maximum
    fraction of the machine one job may hold.  ``mem_capacity`` defaults to
    ``0.75 * procs * mem_per_proc``, so memory genuinely binds for wide
    workloads instead of mirroring the processor constraint.
    """
    if procs < 1:
        raise SchedulingError(f"need >= 1 processor, got {procs}")
    if not 0.0 < alpha <= 1.0:
        raise SchedulingError(f"alpha must be in (0, 1], got {alpha}")
    if not 0.0 < cap <= 1.0:
        raise SchedulingError(f"cap must be in (0, 1], got {cap}")
    if mem_per_proc <= 0:
        raise SchedulingError(f"mem_per_proc must be > 0, got {mem_per_proc}")
    if mem_capacity is None:
        mem_capacity = 0.75 * procs * mem_per_proc
    if mem_capacity <= 0:
        raise SchedulingError(f"mem_capacity must be > 0, got {mem_capacity}")

    jobs = list(jobs)
    if not jobs:
        raise SchedulingError("empty job list")
    width_cap = max(1, math.ceil(cap * procs))

    free = set(range(procs))
    mem_free = float(mem_capacity)
    pending: list = []            # FIFO order = arrival order
    started: list[tuple[object, tuple[int, ...], float, float]] = []
    releases: dict[str, float] = {}
    completions: dict[str, float] = {}
    dedicated: dict[str, float] = {}
    engine = SimEngine()

    def shape(job) -> tuple[int, int, float]:
        """(min procs, max procs, work) of a job."""
        width = max(1, min(int(job.nodes), width_cap))
        work = float(job.run_time) * max(1, int(job.nodes))
        lo = max(1, math.ceil(alpha * width))
        if lo * mem_per_proc > mem_capacity:
            raise SchedulingError(
                f"job {job.id!r} needs {lo * mem_per_proc:g} memory even at "
                f"its minimum allocation, capacity is {mem_capacity:g}")
        return lo, width, work

    def try_start() -> None:
        nonlocal mem_free
        still = []
        for job in pending:
            lo, hi, work = shape(job)
            mem_width = int(mem_free // mem_per_proc)
            p = min(hi, len(free), mem_width)
            if p < lo:
                still.append(job)
                continue
            hosts = tuple(sorted(free)[:p])
            mem = p * mem_per_proc
            free.difference_update(hosts)
            mem_free -= mem
            finish = engine.now + work / p
            started.append((job, hosts, engine.now, finish))
            completions[str(job.id)] = finish
            engine.at(finish, lambda j=job, h=hosts, m=mem: complete(j, h, m))
        pending[:] = still

    def complete(job, hosts, mem) -> None:
        nonlocal mem_free
        free.update(hosts)
        mem_free += mem
        try_start()

    def release(job) -> None:
        lo, hi, work = shape(job)
        releases[str(job.id)] = engine.now
        dedicated[str(job.id)] = work / hi   # alone, at full width
        pending.append(job)
        try_start()

    for job in sorted(jobs, key=lambda j: (float(j.submit_time), str(j.id))):
        engine.at(float(job.submit_time), lambda j=job: release(j))

    with _obs.span("sched.moldable", jobs=len(jobs), procs=procs):
        engine.run()

    if pending:
        raise SchedulingError(
            f"{len(pending)} job(s) never started; first stuck: "
            f"{pending[0].id!r}")

    schedule = Schedule(meta={"scheduler": "moldable-list",
                              "alpha": f"{alpha:g}", "cap": f"{cap:g}"})
    schedule.add_cluster(Cluster("procs", procs, f"{procs} processors"))
    shrunk = 0
    for job, hosts, start, finish in sorted(
            started, key=lambda s: (s[2], str(s[0].id))):
        _, hi, _ = shape(job)
        if len(hosts) < hi:
            shrunk += 1
        schedule.add_task(Task(
            str(job.id), "job", start, finish,
            [Configuration("procs", hosts_to_ranges(hosts))],
            {"job": str(job.id), "procs": str(len(hosts)),
             "max_procs": str(hi),
             "mem": f"{len(hosts) * mem_per_proc:g}"}))

    ids = sorted(releases)
    metrics = {
        **base_metrics(schedule),
        **flow_metrics([releases[i] for i in ids],
                       [completions[i] for i in ids],
                       [dedicated[i] for i in ids]),
        "shrunk_jobs": float(shrunk),
    }
    meta = {
        "procs": str(procs),
        "mem_capacity": f"{mem_capacity:g}",
        "mem_per_proc": f"{mem_per_proc:g}",
        "alpha": f"{alpha:g}",
        "cap": f"{cap:g}",
    }
    return SchedResult("moldable-list", schedule, metrics, meta)
