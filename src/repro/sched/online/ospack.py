"""The OS scheduler pack: preemptive CPU policies as schedule generators.

Four classic operating-system scheduling disciplines, each implemented as a
:class:`~repro.simulate.preempt.SchedClass` policy over the preemptive CPU
simulator and wrapped in a function returning a uniform
:class:`~repro.sched.result.SchedResult`:

* :func:`round_robin_schedule` — FIFO with a fixed time quantum;
* :func:`sjf_schedule` — shortest job first; preemptive by default, i.e.
  SRPT (shortest remaining processing time), which is optimal for mean
  flow time on one machine;
* :func:`mlfq_schedule` — multilevel feedback queue: new jobs start at the
  top priority level, each demotion doubles the quantum, and an optional
  periodic boost returns every queued job to the top level;
* :func:`cfs_schedule` — a CFS-style fair scheduler: jobs accumulate
  *virtual runtime* (wall time divided by weight), the runnable job with
  the least virtual runtime runs next, and slice lengths shrink as the run
  queue grows (``latency / nrunnable``, floored at ``min_granularity``).

Jobs are :class:`~repro.workloads.jobs.Job` records (``submit_time`` is the
release, ``run_time`` the sequential work — every job is a single-threaded
process here) or raw :class:`~repro.simulate.preempt.CpuJob` instances.
Metrics combine the schedule-level basics with the online flow/stretch
summary of :func:`repro.sched.metrics.flow_metrics`.

Quantum defaults: where a time quantum (or CFS latency) is not given, it is
derived from the workload as a quarter of the median job length — scale-free
across traces whose run times span seconds to hours, and deterministic for
a given job list.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from collections.abc import Iterable, Sequence

from repro.errors import SchedulingError
from repro.obs import core as _obs
from repro.sched.metrics import flow_metrics
from repro.sched.result import SchedResult, base_metrics
from repro.simulate.preempt import (
    CpuJob,
    CpuSimResult,
    RunningView,
    SchedClass,
    run_cpu_sim,
)

__all__ = [
    "round_robin_schedule",
    "sjf_schedule",
    "mlfq_schedule",
    "cfs_schedule",
    "auto_quantum",
]


# --------------------------------------------------------------------------
# workload plumbing
# --------------------------------------------------------------------------

def _cpu_jobs(jobs: Iterable) -> list[CpuJob]:
    out = []
    for j in jobs:
        if isinstance(j, CpuJob):
            out.append(j)
        else:  # a workloads.Job (or anything shaped like one)
            try:
                out.append(CpuJob(
                    id=str(j.id),
                    release=float(j.submit_time),
                    work=float(j.run_time),
                    meta={"user": str(j.user)},
                ))
            except AttributeError as exc:
                raise SchedulingError(
                    f"cannot treat {type(j).__name__} as a CPU job: {exc}"
                ) from None
    if not out:
        raise SchedulingError("empty job list")
    return out


def auto_quantum(jobs: Sequence[CpuJob]) -> float:
    """Default time quantum for a workload: median job length / 4."""
    works = sorted(j.work for j in jobs if j.work > 0)
    if not works:
        return 1.0
    mid = works[len(works) // 2]
    return max(mid / 4.0, 1e-6)


def _result(name: str, res: CpuSimResult, options: dict) -> SchedResult:
    ids = sorted(res.releases)
    metrics = {
        **base_metrics(res.schedule),
        **flow_metrics([res.releases[i] for i in ids],
                       [res.completions[i] for i in ids],
                       [res.works[i] for i in ids]),
        "preemptions": float(res.preemptions),
        "slices": float(res.slices),
    }
    return SchedResult(name, res.schedule, metrics,
                       meta={k: str(v) for k, v in options.items()},
                       raw=res)


# --------------------------------------------------------------------------
# round-robin
# --------------------------------------------------------------------------

class RoundRobin(SchedClass):
    """FIFO circular queue with a fixed quantum; no arrival preemption."""

    name = "rr"

    def __init__(self, quantum: float):
        if quantum <= 0:
            raise SchedulingError(f"quantum must be > 0, got {quantum}")
        self.quantum = quantum
        self._queue: deque[CpuJob] = deque()

    def arrive(self, job: CpuJob, remaining: float, now: float) -> None:
        self._queue.append(job)

    def select(self, now: float):
        if not self._queue:
            return None
        return self._queue.popleft(), self.quantum

    def quantum_expired(self, job: CpuJob, remaining: float, now: float) -> None:
        self._queue.append(job)

    preempted = quantum_expired


def round_robin_schedule(jobs: Iterable, *, cpus: int = 1,
                         quantum: float | None = None) -> SchedResult:
    """Round-robin with time quantum ``quantum`` on ``cpus`` identical CPUs."""
    cjobs = _cpu_jobs(jobs)
    q = auto_quantum(cjobs) if quantum is None else float(quantum)
    with _obs.span("sched.rr", jobs=len(cjobs), cpus=cpus):
        res = run_cpu_sim(cjobs, RoundRobin(q), cpus=cpus)
    return _result("rr", res, {"quantum": q, "cpus": cpus})


# --------------------------------------------------------------------------
# shortest job first / shortest remaining processing time
# --------------------------------------------------------------------------

class ShortestFirst(SchedClass):
    """SJF (non-preemptive) or SRPT (``preemptive=True``).

    The ready structure is a min-heap on remaining work; in preemptive mode
    an arrival displaces the running job with the *most* remaining work if
    the newcomer is strictly shorter.
    """

    def __init__(self, preemptive: bool = True):
        self.preemptive = preemptive
        self.name = "sjf-srpt" if preemptive else "sjf"
        self._heap: list[tuple[float, str, CpuJob]] = []

    def _push(self, job: CpuJob, remaining: float) -> None:
        heapq.heappush(self._heap, (remaining, job.id, job))

    def arrive(self, job: CpuJob, remaining: float, now: float) -> None:
        self._push(job, remaining)

    def select(self, now: float):
        if not self._heap:
            return None
        _, _, job = heapq.heappop(self._heap)
        return job, math.inf

    def quantum_expired(self, job: CpuJob, remaining: float, now: float) -> None:
        self._push(job, remaining)

    preempted = quantum_expired

    def preempt_on_arrival(self, job: CpuJob, running: Sequence[RunningView],
                           now: float):
        if not self.preemptive:
            return None
        victim = max(running, key=lambda r: (r.remaining, -r.cpu))
        return victim.cpu if victim.remaining > job.work else None


def sjf_schedule(jobs: Iterable, *, cpus: int = 1,
                 preemptive: bool = True) -> SchedResult:
    """Shortest job first; with ``preemptive`` (default) this is SRPT."""
    cjobs = _cpu_jobs(jobs)
    policy = ShortestFirst(preemptive=bool(preemptive))
    with _obs.span("sched.sjf", jobs=len(cjobs), cpus=cpus,
                   preemptive=preemptive):
        res = run_cpu_sim(cjobs, policy, cpus=cpus)
    return _result("sjf", res, {"preemptive": preemptive, "cpus": cpus})


# --------------------------------------------------------------------------
# multilevel feedback queue
# --------------------------------------------------------------------------

class MLFQ(SchedClass):
    """Multilevel feedback queue with exponentially growing quanta.

    New arrivals enter level 0 (quantum ``q``); burning a full quantum
    demotes a job one level (quantum ``q * 2**level``); being displaced by
    an arrival does *not* demote.  A level-0 arrival preempts the running
    job at the deepest level, so short interactive jobs cut ahead of long
    batch jobs that have already proven themselves long.  With ``boost``
    set, a periodic timer returns every *queued* job to level 0 — the
    classic starvation cure.
    """

    name = "mlfq"

    def __init__(self, quantum: float, levels: int = 3,
                 boost: float | None = None):
        if quantum <= 0:
            raise SchedulingError(f"quantum must be > 0, got {quantum}")
        if levels < 1:
            raise SchedulingError(f"need >= 1 level, got {levels}")
        if boost is not None and boost <= 0:
            raise SchedulingError(f"boost period must be > 0, got {boost}")
        self.quantum = quantum
        self.levels = levels
        self.timer_period = boost
        self._queues: list[deque[CpuJob]] = [deque() for _ in range(levels)]
        self._level: dict[str, int] = {}

    def arrive(self, job: CpuJob, remaining: float, now: float) -> None:
        self._level[job.id] = 0
        self._queues[0].append(job)

    def select(self, now: float):
        for level, queue in enumerate(self._queues):
            if queue:
                return queue.popleft(), self.quantum * (2 ** level)
        return None

    def quantum_expired(self, job: CpuJob, remaining: float, now: float) -> None:
        level = min(self._level[job.id] + 1, self.levels - 1)
        self._level[job.id] = level
        self._queues[level].append(job)

    def preempted(self, job: CpuJob, remaining: float, now: float) -> None:
        self._queues[self._level[job.id]].append(job)

    def preempt_on_arrival(self, job: CpuJob, running: Sequence[RunningView],
                           now: float):
        victim = max(running,
                     key=lambda r: (self._level[r.job.id], r.remaining, -r.cpu))
        return victim.cpu if self._level[victim.job.id] > 0 else None

    def on_timer(self, now: float) -> None:
        for level in range(1, self.levels):
            while self._queues[level]:
                job = self._queues[level].popleft()
                self._level[job.id] = 0
                self._queues[0].append(job)


def mlfq_schedule(jobs: Iterable, *, cpus: int = 1, levels: int = 3,
                  quantum: float | None = None,
                  boost: float | None = None) -> SchedResult:
    """Multilevel feedback queue: ``levels`` queues, base quantum ``quantum``."""
    cjobs = _cpu_jobs(jobs)
    q = auto_quantum(cjobs) if quantum is None else float(quantum)
    policy = MLFQ(q, levels=int(levels),
                  boost=None if boost is None else float(boost))
    with _obs.span("sched.mlfq", jobs=len(cjobs), cpus=cpus, levels=levels):
        res = run_cpu_sim(cjobs, policy, cpus=cpus)
    return _result("mlfq", res, {"quantum": q, "levels": levels,
                                 "boost": boost, "cpus": cpus})


# --------------------------------------------------------------------------
# CFS-style virtual-runtime fair scheduler
# --------------------------------------------------------------------------

class FairShare(SchedClass):
    """CFS-style scheduler: least virtual runtime runs next.

    Virtual runtime advances by ``wall_time / weight`` while a job runs.
    A new arrival's virtual runtime is clamped up to the queue minimum, so
    latecomers do not monopolize the CPU replaying history.  The slice
    budget is ``latency / nrunnable`` (floored at ``min_granularity``): with
    few runnable jobs slices are long, under load every job is still touched
    once per latency period.  An arrival preempts the running job with the
    largest virtual runtime when it leads by more than ``min_granularity``.

    This is the textbook shape of Linux CFS, not a bug-for-bug replica.
    """

    name = "cfs"

    def __init__(self, latency: float, min_granularity: float):
        if latency <= 0 or min_granularity <= 0:
            raise SchedulingError(
                f"latency and min_granularity must be > 0, "
                f"got {latency} and {min_granularity}")
        self.latency = latency
        self.min_granularity = min_granularity
        self._heap: list[tuple[float, str, CpuJob]] = []
        self._vrun: dict[str, float] = {}
        self._min_vrun = 0.0

    def _push(self, job: CpuJob) -> None:
        heapq.heappush(self._heap, (self._vrun[job.id], job.id, job))

    def arrive(self, job: CpuJob, remaining: float, now: float) -> None:
        self._vrun[job.id] = max(self._vrun.get(job.id, 0.0), self._min_vrun)
        self._push(job)

    def select(self, now: float):
        if not self._heap:
            return None
        vrun, _, job = heapq.heappop(self._heap)
        self._min_vrun = max(self._min_vrun, vrun)
        nrunnable = len(self._heap) + 1
        return job, max(self.min_granularity, self.latency / nrunnable)

    def quantum_expired(self, job: CpuJob, remaining: float, now: float) -> None:
        self._push(job)

    preempted = quantum_expired

    def account(self, job: CpuJob, ran: float, now: float) -> None:
        self._vrun[job.id] = self._vrun.get(job.id, 0.0) + ran / job.weight

    def _vrun_now(self, view: RunningView, now: float) -> float:
        return self._vrun.get(view.job.id, 0.0) + (now - view.started) / view.job.weight

    def preempt_on_arrival(self, job: CpuJob, running: Sequence[RunningView],
                           now: float):
        victim = max(running, key=lambda r: (self._vrun_now(r, now), -r.cpu))
        lead = self._vrun_now(victim, now) - self._vrun[job.id]
        return victim.cpu if lead > self.min_granularity else None


def cfs_schedule(jobs: Iterable, *, cpus: int = 1,
                 latency: float | None = None,
                 min_granularity: float | None = None) -> SchedResult:
    """CFS-style fair scheduling; ``latency`` defaults to the median job length."""
    cjobs = _cpu_jobs(jobs)
    lat = (auto_quantum(cjobs) * 4.0) if latency is None else float(latency)
    gran = (lat / 8.0) if min_granularity is None else float(min_granularity)
    policy = FairShare(lat, gran)
    with _obs.span("sched.cfs", jobs=len(cjobs), cpus=cpus):
        res = run_cpu_sim(cjobs, policy, cpus=cpus)
    return _result("cfs", res, {"latency": lat, "min_granularity": gran,
                                "cpus": cpus})
