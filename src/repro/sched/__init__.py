"""Scheduling algorithms: CPA family, HEFT, multi-DAG CRA, backfilling."""

from repro.sched.backfill import backfill_cra, backfill_mapping
from repro.sched.baselines import data_parallel_schedule, task_parallel_schedule
from repro.sched.cpa import cpa_schedule
from repro.sched.cpop import cpop_schedule, downward_ranks
from repro.sched.cra import CRAPolicy, CRAResult, cra_schedule, integer_shares
from repro.sched.heft import HeftResult, heft_schedule, upward_ranks
from repro.sched.mcpa import mcpa_schedule
from repro.sched.mcpa2 import mcpa2_schedule
from repro.sched.mheft import MHeftResult, mheft_schedule
from repro.sched.metrics import (
    efficiency,
    jain_fairness,
    max_stretch,
    speedup,
    stretch,
    stretch_imbalance,
    stretches,
)
from repro.sched.mtask import (
    Allocation,
    MTaskProblem,
    MTaskResult,
    allocate,
    level_bounded_growth,
    map_allocation,
)

__all__ = [
    "Allocation",
    "CRAPolicy",
    "CRAResult",
    "HeftResult",
    "MTaskProblem",
    "MTaskResult",
    "allocate",
    "backfill_cra",
    "backfill_mapping",
    "cpa_schedule",
    "cpop_schedule",
    "cra_schedule",
    "data_parallel_schedule",
    "downward_ranks",
    "efficiency",
    "heft_schedule",
    "integer_shares",
    "jain_fairness",
    "level_bounded_growth",
    "map_allocation",
    "max_stretch",
    "mcpa2_schedule",
    "MHeftResult",
    "mcpa_schedule",
    "mheft_schedule",
    "speedup",
    "stretch",
    "stretch_imbalance",
    "stretches",
    "task_parallel_schedule",
    "upward_ranks",
]
