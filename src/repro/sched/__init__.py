"""Scheduling algorithms behind the scheduler registry.

The supported way to run any scheduler is the registry API::

    from repro.sched import run_scheduler, DagProblem
    result = run_scheduler("cpa", DagProblem(graph, platform))

:func:`repro.sched.registry.available_schedulers` lists everything —
the offline CPA/HEFT families, the multi-DAG CRA algorithms, the cluster
space-sharing policies, and the online zoo (:mod:`repro.sched.online`).
Every run returns the same :class:`~repro.sched.result.SchedResult` shape.

**Deprecated:** importing scheduler *functions* from this package
(``from repro.sched import cpa_schedule``) still works but warns; call
through the registry, or import from the defining submodule
(``repro.sched.cpa``) if you need the raw per-family result types.
The result/problem classes and the metrics helpers remain first-class
exports of this package.
"""

from __future__ import annotations

import functools
import importlib
import warnings

from repro.sched.metrics import (
    efficiency,
    flow_metrics,
    jain_fairness,
    max_stretch,
    speedup,
    stretch,
    stretch_imbalance,
    stretch_summary,
    stretches,
)
from repro.sched.registry import (
    DagProblem,
    JobsProblem,
    MultiDagProblem,
    SchedulerSpec,
    available_schedulers,
    canonical_problem,
    register_scheduler,
    run_scheduler,
    scheduler_for,
)
from repro.sched.result import SchedResult, base_metrics

#: package-level scheduler imports that keep working under a deprecation
#: warning: name -> (defining module, attribute)
_DEPRECATED = {
    "backfill_cra": ("repro.sched.backfill", "backfill_cra"),
    "backfill_mapping": ("repro.sched.backfill", "backfill_mapping"),
    "cpa_schedule": ("repro.sched.cpa", "cpa_schedule"),
    "cpop_schedule": ("repro.sched.cpop", "cpop_schedule"),
    "cra_schedule": ("repro.sched.cra", "cra_schedule"),
    "data_parallel_schedule": ("repro.sched.baselines", "data_parallel_schedule"),
    "downward_ranks": ("repro.sched.cpop", "downward_ranks"),
    "heft_schedule": ("repro.sched.heft", "heft_schedule"),
    "integer_shares": ("repro.sched.cra", "integer_shares"),
    "mcpa2_schedule": ("repro.sched.mcpa2", "mcpa2_schedule"),
    "mcpa_schedule": ("repro.sched.mcpa", "mcpa_schedule"),
    "mheft_schedule": ("repro.sched.mheft", "mheft_schedule"),
    "task_parallel_schedule": ("repro.sched.baselines", "task_parallel_schedule"),
    "upward_ranks": ("repro.sched.heft", "upward_ranks"),
    "allocate": ("repro.sched.mtask", "allocate"),
    "level_bounded_growth": ("repro.sched.mtask", "level_bounded_growth"),
    "map_allocation": ("repro.sched.mtask", "map_allocation"),
}

#: classes and enums re-exported lazily *without* a warning — they are
#: result/problem types, not call sites the registry replaces
_LAZY_TYPES = {
    "Allocation": ("repro.sched.mtask", "Allocation"),
    "CRAPolicy": ("repro.sched.cra", "CRAPolicy"),
    "CRAResult": ("repro.sched.cra", "CRAResult"),
    "HeftResult": ("repro.sched.heft", "HeftResult"),
    "MHeftResult": ("repro.sched.mheft", "MHeftResult"),
    "MTaskProblem": ("repro.sched.mtask", "MTaskProblem"),
    "MTaskResult": ("repro.sched.mtask", "MTaskResult"),
}

__all__ = sorted([
    "DagProblem",
    "JobsProblem",
    "MultiDagProblem",
    "SchedResult",
    "SchedulerSpec",
    "available_schedulers",
    "base_metrics",
    "canonical_problem",
    "efficiency",
    "flow_metrics",
    "jain_fairness",
    "max_stretch",
    "register_scheduler",
    "run_scheduler",
    "scheduler_for",
    "speedup",
    "stretch",
    "stretch_imbalance",
    "stretch_summary",
    "stretches",
    *_DEPRECATED,
    *_LAZY_TYPES,
])


def _deprecated_wrapper(name: str, module: str, attr: str):
    target = getattr(importlib.import_module(module), attr)

    @functools.wraps(target)
    def wrapper(*args, **kwargs):
        warnings.warn(
            f"repro.sched.{name} is deprecated; use "
            f"repro.sched.registry.run_scheduler, or import from {module}",
            DeprecationWarning, stacklevel=2)
        return target(*args, **kwargs)

    return wrapper


def __getattr__(name: str):
    if name in _DEPRECATED:
        module, attr = _DEPRECATED[name]
        wrapper = _deprecated_wrapper(name, module, attr)
        globals()[name] = wrapper   # warn on every call, resolve once
        return wrapper
    if name in _LAZY_TYPES:
        module, attr = _LAZY_TYPES[name]
        value = getattr(importlib.import_module(module), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__
