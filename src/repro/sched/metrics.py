"""Scheduling performance metrics: makespan, stretch, fairness.

Section IV defines the two metrics of the multi-DAG problem:

* the **overall makespan**, the maximum completion time among the scheduled
  applications;
* the **stretch** of an application, "the makespan achieved in the presence
  of resource contention divided by the makespan that would have been
  achieved if the application had had dedicated use of the cluster" — lower
  is better, and a perfectly fair schedule gives all applications the same
  stretch.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import SchedulingError

__all__ = [
    "stretch",
    "stretches",
    "max_stretch",
    "jain_fairness",
    "stretch_imbalance",
    "speedup",
    "efficiency",
    "stretch_summary",
    "flow_metrics",
]


def stretch(contended_makespan: float, dedicated_makespan: float) -> float:
    """Stretch of one application (>= 1 for any non-clairvoyant scheduler).

    Zero-work convention: a job with ``dedicated_makespan == 0`` cannot be
    slowed down relative to itself, so its stretch is **1.0** when it also
    completes instantly and **inf** when contention gave it a positive
    makespan anyway.  (The former raised ``ZeroDivisionError``-by-way-of-
    validation, which made whole batches unanalyzable over traces that
    contain zero-length jobs.)
    """
    if dedicated_makespan < 0:
        raise SchedulingError(f"negative dedicated makespan {dedicated_makespan}")
    if contended_makespan < 0:
        raise SchedulingError(f"negative contended makespan {contended_makespan}")
    if dedicated_makespan == 0:
        return 1.0 if contended_makespan == 0 else math.inf
    return contended_makespan / dedicated_makespan


def stretches(contended: Sequence[float], dedicated: Sequence[float]) -> list[float]:
    """Element-wise stretches of a batch."""
    if len(contended) != len(dedicated):
        raise SchedulingError(
            f"{len(contended)} contended vs {len(dedicated)} dedicated makespans")
    return [stretch(c, d) for c, d in zip(contended, dedicated)]


def max_stretch(contended: Sequence[float], dedicated: Sequence[float]) -> float:
    """The batch's worst stretch (the usual optimization target)."""
    values = stretches(contended, dedicated)
    if not values:
        raise SchedulingError("empty batch")
    return max(values)


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index in (0, 1]; 1 when all values are equal.

    Empty-schedule convention: an empty value list is **vacuously fair**
    and yields 1.0 (there is nobody to treat unfairly).  This keeps the
    index total over arbitrary schedules — an online run whose window
    contains no completed job used to blow up the whole metrics pass.
    """
    if not values:
        return 1.0
    if any(v < 0 for v in values):
        raise SchedulingError("fairness needs non-negative values")
    total = sum(values)
    sq = sum(v * v for v in values)
    if sq == 0:
        return 1.0
    return total * total / (len(values) * sq)


def stretch_imbalance(contended: Sequence[float], dedicated: Sequence[float]) -> float:
    """max stretch / min stretch; 1 for a perfectly fair schedule."""
    values = stretches(contended, dedicated)
    if not values:
        raise SchedulingError("empty batch")
    lo = min(values)
    if lo <= 0:
        raise SchedulingError("non-positive stretch")
    return max(values) / lo


def stretch_summary(contended: Sequence[float], dedicated: Sequence[float]) -> dict[str, float]:
    """The batch's stretch metrics as one flat dict.

    ``max_stretch``, ``mean_stretch``, ``jain_fairness`` and
    ``stretch_imbalance`` of the batch — the shape
    :mod:`repro.obs.runlog` persists per run so the regression gate can
    watch schedule quality across commits.
    """
    values = stretches(contended, dedicated)
    if not values:
        raise SchedulingError("empty batch")
    lo = min(values)
    return {
        "max_stretch": max(values),
        "mean_stretch": sum(values) / len(values),
        "jain_fairness": jain_fairness(values),
        "stretch_imbalance": max(values) / lo if lo > 0 else math.inf,
    }


def speedup(serial_time: float, parallel_time: float) -> float:
    """Classic speedup ``T_1 / T_p``."""
    if parallel_time <= 0:
        raise SchedulingError(f"parallel time must be > 0, got {parallel_time}")
    return serial_time / parallel_time


def efficiency(serial_time: float, parallel_time: float, p: int) -> float:
    """Parallel efficiency ``T_1 / (p * T_p)``."""
    if p < 1:
        raise SchedulingError(f"processor count must be >= 1, got {p}")
    return speedup(serial_time, parallel_time) / p


def flow_metrics(
    releases: Sequence[float],
    completions: Sequence[float],
    processing: Sequence[float],
) -> dict[str, float]:
    """Per-job flow/stretch metrics of an online scheduling run.

    The online analogue of :func:`stretch_summary`: the flow time of job
    ``j`` is ``C_j - r_j`` and its stretch is ``(C_j - r_j) / p_j`` (flow
    divided by processing time — the slowdown a job experiences relative to
    running alone the moment it arrives).  Zero-work jobs follow the
    :func:`stretch` convention; an empty batch yields zeroed aggregates with
    ``jain_fairness = 1.0``.
    """
    if not (len(releases) == len(completions) == len(processing)):
        raise SchedulingError(
            f"{len(releases)} releases vs {len(completions)} completions vs "
            f"{len(processing)} processing times")
    flows = []
    strs = []
    for r, c, p in zip(releases, completions, processing):
        if c < r:
            raise SchedulingError(f"completion {c} precedes release {r}")
        flows.append(c - r)
        strs.append(stretch(c - r, p))
    n = len(flows)
    if n == 0:
        return {"jobs": 0.0, "mean_flow": 0.0, "max_flow": 0.0,
                "mean_stretch": 0.0, "max_stretch": 0.0, "jain_fairness": 1.0}
    finite = [s for s in strs if math.isfinite(s)]
    return {
        "jobs": float(n),
        "mean_flow": sum(flows) / n,
        "max_flow": max(flows),
        "mean_stretch": (sum(finite) / len(finite)) if finite else math.inf,
        "max_stretch": max(strs),
        "jain_fairness": jain_fairness(finite) if finite else 1.0,
    }
