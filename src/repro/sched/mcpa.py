"""MCPA — Modified CPA (Bansal, Kumar & Singh 2006).

Identical to CPA except the allocation phase checks precedence levels: the
total processors allocated to one level may never exceed the cluster size,
which preserves task parallelism within a level.  This "favors
task-parallelism over data-parallelism, which works well in many
situations" — but, as Figure 4 of the paper shows, breaks down when tasks
in one level have very different costs: the heavy task is pinned to a small
allocation and the whole level waits for it, leaving large idle holes.
"""

from __future__ import annotations

from repro.dag.graph import TaskGraph
from repro.dag.moldable import AmdahlModel, SpeedupModel
from repro.platform.model import Platform
from repro.sched.cpa import _restricted_problem
from repro.sched.mtask import (
    MTaskProblem,
    MTaskResult,
    allocate,
    level_bounded_growth,
    map_allocation,
)

__all__ = ["mcpa_schedule"]


def mcpa_schedule(
    graph: TaskGraph,
    platform: Platform,
    model: SpeedupModel | None = None,
    *,
    hosts: tuple[int, ...] | None = None,
    include_transfers: bool = False,
) -> MTaskResult:
    """Schedule a moldable-task DAG with MCPA (level-bounded allocations)."""
    model = model or AmdahlModel()
    problem = MTaskProblem(graph, platform, model)
    alloc_problem = problem if hosts is None else _restricted_problem(problem, len(hosts))
    allocation = allocate(alloc_problem, may_grow=level_bounded_growth(alloc_problem))
    return map_allocation(problem, allocation, algorithm="mcpa", hosts=hosts,
                          include_transfers=include_transfers)
