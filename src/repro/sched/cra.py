"""CRA — Constrained Resource Allocation for multiple parallel task graphs.

The Section IV case study (N'takpe & Suter 2009; Casanova, Desprez & Suter
2010): to schedule a batch of mixed-parallel applications on one cluster,
first distribute the processors among the applications, then let each
application build its own schedule inside its share.

The share of application ``i`` is::

    beta_i = mu / |A|  +  (1 - mu) * X(i) / sum_j X(j)

where ``X`` is the *work* ``W(i)`` for ``CRA_WORK``, the maximum precedence
-level width for ``CRA_WIDTH``, or the sequential critical-path length for
``CRA_CP``; ``mu`` in [0, 1] blends toward an equal split.  Integer shares
use largest-remainder rounding with a one-processor floor, and each
application receives a *contiguous* block of processors (visible as the
horizontal bands of Figure 5).
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.model import Schedule, Task
from repro.dag.graph import TaskGraph
from repro.dag.moldable import AmdahlModel, SpeedupModel
from repro.errors import SchedulingError
from repro.obs import core as _obs
from repro.platform.model import Platform
from repro.sched.cpa import cpa_schedule
from repro.sched.mtask import MTaskResult

__all__ = ["CRAPolicy", "CRAResult", "cra_schedule", "integer_shares"]


class CRAPolicy(enum.Enum):
    """How initial processor shares are derived from the applications."""

    WORK = "work"
    WIDTH = "width"
    CP = "cp"
    EQUAL = "equal"


def _characteristic(policy: CRAPolicy, graph: TaskGraph) -> float:
    if policy is CRAPolicy.WORK:
        return graph.total_work()
    if policy is CRAPolicy.WIDTH:
        return float(graph.max_level_width())
    if policy is CRAPolicy.CP:
        _, length = graph.critical_path(lambda v: graph.node(v).work)
        return length
    return 1.0  # EQUAL


def integer_shares(fractions: Sequence[float], total: int) -> list[int]:
    """Largest-remainder apportionment with a floor of one per entry."""
    n = len(fractions)
    if n == 0:
        raise SchedulingError("no applications to share processors among")
    if total < n:
        raise SchedulingError(f"{total} processors cannot host {n} applications")
    s = sum(fractions)
    if s <= 0:
        raise SchedulingError("shares sum to zero")
    ideal = [f / s * total for f in fractions]
    shares = [max(1, int(x)) for x in ideal]
    # Fix the sum: remove from the most over-floored, add to the largest remainders.
    while sum(shares) > total:
        idx = max(range(n), key=lambda i: (shares[i] - ideal[i], shares[i]))
        if shares[idx] <= 1:
            idx = max(range(n), key=lambda i: shares[i])
        shares[idx] -= 1
    remainders = sorted(range(n), key=lambda i: (ideal[i] - shares[i]), reverse=True)
    k = 0
    while sum(shares) < total:
        shares[remainders[k % n]] += 1
        k += 1
    return shares


@dataclass(frozen=True)
class CRAResult:
    """Outcome of a CRA multi-DAG scheduling run."""

    schedule: Schedule
    app_results: tuple[MTaskResult, ...]
    shares: tuple[int, ...]
    blocks: tuple[tuple[int, ...], ...]
    betas: tuple[float, ...]
    policy: CRAPolicy

    @property
    def makespan(self) -> float:
        """Overall batch makespan."""
        return self.schedule.makespan

    @property
    def app_completion_times(self) -> tuple[float, ...]:
        return tuple(r.sim.schedule.end_time for r in self.app_results)


@_obs.span("sched.cra")
def cra_schedule(
    graphs: Sequence[TaskGraph],
    platform: Platform,
    model: SpeedupModel | None = None,
    *,
    policy: CRAPolicy | str = CRAPolicy.WORK,
    mu: float = 0.5,
    inner: Callable[..., MTaskResult] | None = None,
) -> CRAResult:
    """Schedule a batch of DAGs under constrained resource allocation.

    ``inner`` is the single-DAG scheduler run inside each share (default
    CPA); it must accept ``hosts=`` like :func:`repro.sched.cpa.cpa_schedule`.
    The combined Jedule schedule types each application's tasks ``app<i>``
    so a color map can give each application its own color (Figure 5).
    """
    if isinstance(policy, str):
        policy = CRAPolicy(policy.lower())
    if not 0.0 <= mu <= 1.0:
        raise SchedulingError(f"mu must be in [0, 1], got {mu}")
    if not graphs:
        raise SchedulingError("empty batch")
    model = model or AmdahlModel()
    inner = inner or cpa_schedule

    n = len(graphs)
    xs = [_characteristic(policy, g) for g in graphs]
    total_x = sum(xs)
    betas = [mu / n + (1.0 - mu) * x / total_x for x in xs]
    shares = integer_shares(betas, platform.size)

    blocks: list[tuple[int, ...]] = []
    offset = 0
    for share in shares:
        blocks.append(tuple(range(offset, offset + share)))
        offset += share

    app_results = [
        inner(g, platform, model, hosts=block)
        for g, block in zip(graphs, blocks)
    ]

    combined = Schedule(
        [c for c in app_results[0].schedule.clusters],
        meta={"algorithm": f"cra_{policy.value}", "mu": f"{mu}", "apps": str(n)},
    )
    for i, result in enumerate(app_results):
        for t in result.schedule:
            combined.add_task(Task(
                f"a{i}.{t.id}", f"app{i}", t.start_time, t.end_time,
                t.configurations, {**dict(t.meta), "app": str(i)},
            ))
    return CRAResult(combined, tuple(app_results), tuple(shares),
                     tuple(blocks), tuple(betas), policy)
