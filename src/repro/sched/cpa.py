"""CPA — Critical Path and Area-based scheduling (Radulescu & van Gemund).

The baseline two-step algorithm of the Section III case study: allocate
processors to moldable tasks until the critical path drops to the average
area bound, then list-map.  CPA is known to let allocations grow too big on
graphs with wide levels (reducing task parallelism), which MCPA addresses —
and to stay robust when level task costs are very uneven, which is exactly
the Figure 4 scenario where MCPA fails.
"""

from __future__ import annotations

from repro.dag.graph import TaskGraph
from repro.dag.moldable import AmdahlModel, SpeedupModel
from repro.obs import core as _obs
from repro.platform.model import Platform
from repro.sched.mtask import MTaskProblem, MTaskResult, allocate, map_allocation

__all__ = ["cpa_schedule"]


@_obs.span("sched.cpa")
def cpa_schedule(
    graph: TaskGraph,
    platform: Platform,
    model: SpeedupModel | None = None,
    *,
    hosts: tuple[int, ...] | None = None,
    include_transfers: bool = False,
) -> MTaskResult:
    """Schedule a moldable-task DAG with CPA.

    ``hosts`` restricts execution to a subset of the cluster (used by the
    multi-DAG CRA algorithms); the allocation phase still reasons about the
    restricted processor count in that case.
    """
    model = model or AmdahlModel()
    problem = MTaskProblem(graph, platform, model)
    if hosts is not None:
        # Allocation must target the restricted share, not the full cluster.
        sub = _restricted_problem(problem, len(hosts))
        allocation = allocate(sub)
    else:
        allocation = allocate(problem)
    return map_allocation(problem, allocation, algorithm="cpa", hosts=hosts,
                          include_transfers=include_transfers)


def _restricted_problem(problem: MTaskProblem, n_hosts: int) -> MTaskProblem:
    """A same-graph problem on a same-speed cluster of ``n_hosts``."""
    from repro.platform.builders import homogeneous_cluster

    sub_platform = homogeneous_cluster(n_hosts, problem.speed,
                                       name=f"{problem.platform.name}-share")
    return MTaskProblem(problem.graph, sub_platform, problem.model)
