"""MCPA2 — the poly-algorithm of Hunold (CCGrid 2010).

Section III-B: "We could find a workaround to this problem by introducing a
poly-algorithm (MCPA2) that uses CPA or MCPA depending on the DAG and the
parallel platform.  For the example shown in Figure 4 the poly-algorithm
MCPA2 generates the same schedule as CPA."

This implementation evaluates both candidate schedules (both are cheap,
low-cost tuning being the point of the original publication) and keeps the
one with the smaller makespan, recording which branch won.
"""

from __future__ import annotations

from repro.dag.graph import TaskGraph
from repro.dag.moldable import AmdahlModel, SpeedupModel
from repro.platform.model import Platform
from repro.sched.cpa import cpa_schedule
from repro.sched.mcpa import mcpa_schedule
from repro.sched.mtask import MTaskResult

__all__ = ["mcpa2_schedule"]


def mcpa2_schedule(
    graph: TaskGraph,
    platform: Platform,
    model: SpeedupModel | None = None,
    *,
    hosts: tuple[int, ...] | None = None,
    include_transfers: bool = False,
) -> MTaskResult:
    """Schedule with MCPA2: the better of CPA and MCPA for this instance.

    Ties go to MCPA (the level-bounded allocation is the cheaper/safer
    default the modification was introduced for).
    """
    model = model or AmdahlModel()
    cpa = cpa_schedule(graph, platform, model, hosts=hosts,
                       include_transfers=include_transfers)
    mcpa = mcpa_schedule(graph, platform, model, hosts=hosts,
                         include_transfers=include_transfers)
    chosen = cpa if cpa.makespan < mcpa.makespan else mcpa
    chosen.mapping.meta["algorithm"] = "mcpa2"
    chosen.mapping.meta["mcpa2_branch"] = chosen.algorithm
    chosen.schedule.meta["algorithm"] = "mcpa2"
    chosen.schedule.meta["mcpa2_branch"] = chosen.algorithm
    return MTaskResult("mcpa2", chosen.allocation, chosen.mapping, chosen.sim)
