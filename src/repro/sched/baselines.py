"""Baseline schedulers: pure task-parallelism and pure data-parallelism.

Section III-A motivates mixed-parallel scheduling: CPA-family algorithms
"reduce the completion time of the scheduled applications with regard to
schedules that only exploit either task- or data-parallelism".  These are
those two reference points:

* :func:`task_parallel_schedule` — every moldable task runs on exactly one
  processor; parallelism comes only from independent tasks (classic list
  scheduling of sequential tasks);
* :func:`data_parallel_schedule` — every task runs on *all* processors;
  tasks execute one after another in topological order (parallelism comes
  only from within each task).
"""

from __future__ import annotations

from repro.dag.graph import TaskGraph
from repro.dag.moldable import AmdahlModel, SpeedupModel
from repro.platform.model import Platform
from repro.sched.mtask import Allocation, MTaskProblem, MTaskResult, map_allocation

__all__ = ["task_parallel_schedule", "data_parallel_schedule"]


def task_parallel_schedule(
    graph: TaskGraph,
    platform: Platform,
    model: SpeedupModel | None = None,
    *,
    hosts: tuple[int, ...] | None = None,
) -> MTaskResult:
    """Schedule with one processor per task (task-parallelism only)."""
    model = model or AmdahlModel()
    problem = MTaskProblem(graph, platform, model)
    allocation = Allocation({v: 1 for v in graph.task_ids})
    return map_allocation(problem, allocation, algorithm="task-parallel",
                          hosts=hosts)


def data_parallel_schedule(
    graph: TaskGraph,
    platform: Platform,
    model: SpeedupModel | None = None,
    *,
    hosts: tuple[int, ...] | None = None,
) -> MTaskResult:
    """Schedule with all processors per task (data-parallelism only).

    Since every task occupies the whole machine, the mapping degenerates to
    a serialization in precedence order — which is exactly what a
    data-parallel-only execution of a task graph is.
    """
    model = model or AmdahlModel()
    problem = MTaskProblem(graph, platform, model)
    width = len(hosts) if hosts is not None else platform.size
    allocation = Allocation({v: width for v in graph.task_ids})
    return map_allocation(problem, allocation, algorithm="data-parallel",
                          hosts=hosts)
