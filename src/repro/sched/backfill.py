"""Conservative backfilling / schedule compaction (Section IV-B).

The paper's multi-DAG case study "used Jedule to see the impact of a
conservative backfilling step applied at the end of the scheduling process.
A comparison of the Jedule outputs with and without backfilling allows for
a check that no task is delayed by this step.  The reduction of the total
idle time can also be easily quantified."

This implements that pass: tasks keep their host allocations and are
left-shifted in original start order to the earliest instant allowed by
their predecessors' data arrival and their hosts' availability.  Processing
in start order makes the no-delay guarantee inductive: every task's
predecessors finish no later than before, and its hosts free up no later
than before, so ``new_start <= old_start`` for every task.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.model import Schedule, Task
from repro.dag.graph import TaskGraph
from repro.dag.moldable import SpeedupModel
from repro.errors import SchedulingError
from repro.obs import core as _obs
from repro.platform.model import Platform
from repro.platform.network import CommModel
from repro.simulate.executor import Mapping, SimResult

__all__ = ["backfill_mapping", "backfill_cra"]


@_obs.span("sched.backfill")
def backfill_mapping(
    graph: TaskGraph,
    mapping: Mapping,
    sim: SimResult,
    platform: Platform,
    model: SpeedupModel,
    *,
    comm: CommModel | None = None,
) -> SimResult:
    """Left-shift one application's schedule; returns the compacted result."""
    comm = comm or CommModel(platform)
    hosts_of = {p.task_id: p.hosts for p in mapping.placements}
    order = sorted(mapping.task_ids, key=lambda v: (sim.start[v], v))

    host_free: dict[int, float] = {}
    new_start: dict[str, float] = {}
    new_finish: dict[str, float] = {}
    for v in order:
        duration = sim.finish[v] - sim.start[v]
        ready = 0.0
        for pred in graph.predecessors(v):
            if pred not in new_finish:
                raise SchedulingError(
                    f"start order places {v!r} before its predecessor {pred!r}; "
                    "input schedule violates precedence")
            delay = comm.group_time(hosts_of[pred], hosts_of[v],
                                    graph.edge(pred, v).data)
            ready = max(ready, new_finish[pred] + delay)
        avail = max((host_free.get(h, 0.0) for h in hosts_of[v]), default=0.0)
        t0 = max(ready, avail)
        if t0 > sim.start[v] + 1e-9:
            # conservative guarantee: never delay; fall back to original slot
            t0 = sim.start[v]
        t1 = t0 + duration
        new_start[v], new_finish[v] = t0, t1
        for h in hosts_of[v]:
            host_free[h] = t1

    schedule = Schedule(sim.schedule.clusters,
                        meta={**sim.schedule.meta, "backfilled": "true"})
    for t in sim.schedule:
        schedule.add_task(Task(t.id, t.type, new_start[t.id], new_finish[t.id],
                               t.configurations, t.meta))
    return SimResult(schedule, new_start, new_finish)


def backfill_cra(cra_result, graphs: Sequence[TaskGraph], platform: Platform,
                 model: SpeedupModel) -> Schedule:
    """Backfill every application of a CRA result; returns the combined schedule.

    Each application compacts within its own processor block (blocks are
    disjoint, so per-application compaction is globally conflict-free).
    """
    comm = CommModel(platform)
    combined = Schedule(cra_result.schedule.clusters,
                        meta={**cra_result.schedule.meta, "backfilled": "true"})
    for i, (graph, result) in enumerate(zip(graphs, cra_result.app_results)):
        compacted = backfill_mapping(graph, result.mapping, result.sim,
                                     platform, model, comm=comm)
        for t in compacted.schedule:
            combined.add_task(Task(
                f"a{i}.{t.id}", f"app{i}", t.start_time, t.end_time,
                t.configurations, {**dict(t.meta), "app": str(i)},
            ))
    return combined
