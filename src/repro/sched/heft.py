"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu 2002).

The Section V scheduler: single-processor tasks on a heterogeneous
multi-cluster.  Tasks are prioritized by decreasing *upward rank* (average
execution cost plus the maximum over successors of average edge cost plus
the successor's rank); each task then goes to the processor minimizing its
Earliest Finish Time, with the insertion policy (a task may slot into an
idle gap between two already-scheduled tasks when it fits).

Communication costs use the platform's actual routes, so the backbone
latency of the Figure 7 platform flows into every EFT decision — flat
backbone latency makes a remote same-speed processor exactly as attractive
as a local one, which is the anomaly Figure 8 visualizes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.core.model import Configuration, Schedule, Task
from repro.dag.graph import TaskGraph
from repro.errors import SchedulingError
from repro.obs import core as _obs
from repro.platform.model import Platform
from repro.platform.network import CommModel
from repro.simulate.executor import platform_to_clusters

__all__ = ["HeftResult", "heft_schedule", "upward_ranks"]


def upward_ranks(graph: TaskGraph, platform: Platform,
                 comm: CommModel | None = None) -> dict[str, float]:
    """Average-cost upward rank of every task."""
    comm = comm or CommModel(platform)
    inv_speeds = [1.0 / h.speed for h in platform]
    mean_inv_speed = sum(inv_speeds) / len(inv_speeds)

    ranks: dict[str, float] = {}
    for v in reversed(graph.topo_order()):
        w = graph.node(v).work * mean_inv_speed
        best = 0.0
        for s in graph.successors(v):
            e = graph.edge(v, s)
            best = max(best, comm.average_time(e.data) + ranks[s])
        ranks[v] = w + best
    return ranks


@dataclass
class _HostAgenda:
    """Sorted busy intervals of one processor, for the insertion policy."""

    intervals: list[tuple[float, float]] = field(default_factory=list)

    def earliest_slot(self, ready: float, duration: float) -> float:
        """Earliest start >= ready of a free slot of the given duration."""
        t = ready
        for s, e in self.intervals:
            if t + duration <= s:
                return t
            t = max(t, e)
        return t

    def insert(self, start: float, end: float) -> None:
        bisect.insort(self.intervals, (start, end))


@dataclass(frozen=True)
class HeftResult:
    """A HEFT schedule plus its bookkeeping."""

    schedule: Schedule
    assignment: dict[str, int]
    start: dict[str, float]
    finish: dict[str, float]
    ranks: dict[str, float]

    @property
    def makespan(self) -> float:
        return max(self.finish.values(), default=0.0)

    def hosts_of_type(self, task_type: str, graph: TaskGraph) -> dict[str, int]:
        """task id -> host for every task of one type (anomaly inspection)."""
        return {v: self.assignment[v] for v in self.assignment
                if graph.node(v).type == task_type}


def heft_schedule(
    graph: TaskGraph,
    platform: Platform,
    *,
    task_type_from_node: bool = True,
) -> HeftResult:
    """Run HEFT and build the Jedule schedule of the result.

    With ``task_type_from_node`` each Jedule task takes its DAG node's type
    (Montage stage names color Figure 8/9); otherwise all tasks are typed
    ``computation``.
    """
    if len(graph) == 0:
        raise SchedulingError("empty task graph")
    comm = CommModel(platform)
    with _obs.span("sched.heft.priorities", tasks=len(graph)):
        ranks = upward_ranks(graph, platform, comm)
        order = sorted(graph.task_ids, key=lambda v: (-ranks[v], v))

    agendas = {h.index: _HostAgenda() for h in platform}
    assignment: dict[str, int] = {}
    start: dict[str, float] = {}
    finish: dict[str, float] = {}

    with _obs.span("sched.heft.place"):
        for v in order:
            node = graph.node(v)
            best_host: int | None = None
            best_eft = float("inf")
            best_est = 0.0
            for host in platform:
                ready = 0.0
                for pred in graph.predecessors(v):
                    if pred not in finish:
                        raise SchedulingError(
                            f"rank order placed {v!r} before predecessor {pred!r}; "
                            "edge costs must be non-negative")
                    e = graph.edge(pred, v)
                    delay = 0.0 if assignment[pred] == host.index else \
                        comm.time(assignment[pred], host.index, e.data)
                    ready = max(ready, finish[pred] + delay)
                duration = host.compute_time(node.work)
                est = agendas[host.index].earliest_slot(ready, duration)
                eft = est + duration
                if eft < best_eft - 1e-12:
                    best_host, best_eft, best_est = host.index, eft, est
            assert best_host is not None
            assignment[v] = best_host
            start[v], finish[v] = best_est, best_eft
            agendas[best_host].insert(best_est, best_eft)
    _obs.add("sched.tasks_placed", len(order))

    schedule = Schedule(platform_to_clusters(platform),
                        meta={"algorithm": "heft", "platform": platform.name})
    for v in order:
        node = graph.node(v)
        host = platform.host(assignment[v])
        conf = Configuration(host.cluster_id, [(platform.local_index(host), 1)])
        schedule.add_task(Task(
            v,
            node.type if task_type_from_node else "computation",
            start[v], finish[v], [conf],
            meta={"host": str(assignment[v]), **dict(node.attrs)},
        ))
    return HeftResult(schedule, assignment, start, finish, ranks)
