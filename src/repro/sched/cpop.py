"""CPOP — Critical Path On a Processor (Topcuoglu, Hariri & Wu 2002).

The companion algorithm of HEFT from the same paper the Section V case
study cites: tasks are prioritized by *upward + downward* rank; tasks on
the critical path are all pinned to the single processor minimizing the
critical path's total execution time, others placed by earliest finish
time (insertion policy) as in HEFT.  Included as a comparator for the
heterogeneous-platform experiments.
"""

from __future__ import annotations

from repro.core.model import Configuration, Schedule, Task
from repro.dag.graph import TaskGraph
from repro.errors import SchedulingError
from repro.obs import core as _obs
from repro.platform.model import Platform
from repro.platform.network import CommModel
from repro.sched.heft import HeftResult, _HostAgenda, upward_ranks
from repro.simulate.executor import platform_to_clusters

__all__ = ["cpop_schedule", "downward_ranks"]


def downward_ranks(graph: TaskGraph, platform: Platform,
                   comm: CommModel | None = None) -> dict[str, float]:
    """Average-cost downward rank (longest average path from a source)."""
    comm = comm or CommModel(platform)
    inv_speeds = [1.0 / h.speed for h in platform]
    mean_inv_speed = sum(inv_speeds) / len(inv_speeds)
    ranks: dict[str, float] = {}
    for v in graph.topo_order():
        best = 0.0
        for p in graph.predecessors(v):
            e = graph.edge(p, v)
            w_pred = graph.node(p).work * mean_inv_speed
            best = max(best, ranks[p] + w_pred + comm.average_time(e.data))
        ranks[v] = best
    return ranks


def cpop_schedule(graph: TaskGraph, platform: Platform) -> HeftResult:
    """Run CPOP and build the Jedule schedule of the result."""
    if len(graph) == 0:
        raise SchedulingError("empty task graph")
    comm = CommModel(platform)
    with _obs.span("sched.cpop.priorities", tasks=len(graph)):
        up = upward_ranks(graph, platform, comm)
        down = downward_ranks(graph, platform, comm)
        priority = {v: up[v] + down[v] for v in graph.task_ids}

    # the critical path: entry task with the highest priority, then greedily
    # follow the successor with (numerically) equal priority
    cp_value = max(priority[s] for s in graph.sources())
    cp: set[str] = set()
    current = max(graph.sources(), key=lambda s: priority[s])
    cp.add(current)
    while graph.successors(current):
        nxt = max(graph.successors(current), key=lambda s: priority[s])
        if priority[nxt] < cp_value - 1e-6 * cp_value:
            # numerical drift guard: still follow the max-priority child
            pass
        cp.add(nxt)
        current = nxt

    # pin the critical path to the processor minimizing its total time
    cp_work = sum(graph.node(v).work for v in cp)
    cp_host = min(platform, key=lambda h: cp_work / h.speed).index

    agendas = {h.index: _HostAgenda() for h in platform}
    assignment: dict[str, int] = {}
    start: dict[str, float] = {}
    finish: dict[str, float] = {}

    # schedule in priority order among ready tasks
    with _obs.span("sched.cpop.place"):
        pending = {v: graph.in_degree(v) for v in graph.task_ids}
        ready = [v for v, d in pending.items() if d == 0]
        while ready:
            ready.sort(key=lambda v: (-priority[v], v))
            v = ready.pop(0)
            node = graph.node(v)
            candidates = [platform.host(cp_host)] if v in cp else list(platform)
            best_host, best_eft, best_est = None, float("inf"), 0.0
            for host in candidates:
                data_ready = 0.0
                for pred in graph.predecessors(v):
                    e = graph.edge(pred, v)
                    delay = 0.0 if assignment[pred] == host.index else \
                        comm.time(assignment[pred], host.index, e.data)
                    data_ready = max(data_ready, finish[pred] + delay)
                duration = host.compute_time(node.work)
                est = agendas[host.index].earliest_slot(data_ready, duration)
                eft = est + duration
                if eft < best_eft - 1e-12:
                    best_host, best_eft, best_est = host.index, eft, est
            assert best_host is not None
            assignment[v] = best_host
            start[v], finish[v] = best_est, best_eft
            agendas[best_host].insert(best_est, best_eft)
            for succ in graph.successors(v):
                pending[succ] -= 1
                if pending[succ] == 0:
                    ready.append(succ)
    _obs.add("sched.tasks_placed", len(assignment))

    schedule = Schedule(platform_to_clusters(platform),
                        meta={"algorithm": "cpop", "platform": platform.name})
    for v in graph.task_ids:
        node = graph.node(v)
        host = platform.host(assignment[v])
        conf = Configuration(host.cluster_id, [(platform.local_index(host), 1)])
        schedule.add_task(Task(v, node.type, start[v], finish[v], [conf],
                               meta={"host": str(assignment[v]),
                                     "on_cp": str(v in cp).lower(),
                                     **dict(node.attrs)}))
    return HeftResult(schedule, assignment, start, finish, priority)
