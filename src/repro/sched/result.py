"""The uniform outcome type of every registered scheduler.

Historically each scheduler family grew its own result shape —
``MTaskResult`` (CPA family), ``HeftResult``/``MHeftResult`` (list
schedulers), ``CRAResult`` (multi-DAG) — which meant every consumer had to
know which scheduler it had called.  :class:`SchedResult` is the common
denominator the registry (:mod:`repro.sched.registry`) normalizes all of
them to: the schedule itself, a flat dict of deterministic quality metrics,
string meta, and the scheduler-specific result object under ``raw`` for
callers that need the bookkeeping (mappings, ranks, shares...).
"""

from __future__ import annotations

import types
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.model import Schedule
from repro.core.stats import utilization
from repro.errors import SchedulingError

__all__ = ["SchedResult", "base_metrics"]


def base_metrics(schedule: Schedule) -> dict[str, float]:
    """The metrics every scheduler reports: makespan, utilization, counts."""
    return {
        "makespan": float(schedule.makespan),
        "utilization": float(utilization(schedule)) if len(schedule) else 0.0,
        "tasks": float(len(schedule)),
        "hosts": float(schedule.num_hosts),
    }


@dataclass(frozen=True)
class SchedResult:
    """What running any scheduler through the registry yields.

    ``metrics`` values must be deterministic for a given problem + options
    (the benchmark regression gate hard-fails on their drift); ``meta``
    carries free-form strings (policy names, option echoes).  Both are
    exposed as read-only mapping proxies.
    """

    scheduler: str
    schedule: Schedule
    metrics: Mapping[str, float]
    meta: Mapping[str, str] = field(default_factory=dict)
    raw: object = None

    def __post_init__(self) -> None:
        if not isinstance(self.schedule, Schedule):
            raise SchedulingError(
                f"scheduler {self.scheduler!r} produced "
                f"{type(self.schedule).__name__}, not a Schedule")
        object.__setattr__(self, "metrics", types.MappingProxyType(
            {str(k): float(v) for k, v in dict(self.metrics).items()}))
        object.__setattr__(self, "meta", types.MappingProxyType(
            {str(k): str(v) for k, v in dict(self.meta).items()}))

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    def to_json(self) -> dict:
        """JSON-ready summary (schedule omitted; use io formats for that)."""
        return {
            "scheduler": self.scheduler,
            "metrics": dict(self.metrics),
            "meta": dict(self.meta),
        }
