"""On-disk trace logs for the task-pool runtime.

Section VI-B: "The task pool run-time environment is able to log run-time
information about each task for offline analysis in Jedule."  This module
is that log file: a small TSV format holding the machine shape and every
worker segment, so a run can be recorded once and analyzed/rendered later
(or produced by a real runtime and ingested here).

Format::

    # taskpool-trace 1
    # sockets 16 cores_per_socket 2 core_speed 1.6e9 bandwidth 3.2e9
    # tasks 8191 makespan 7.514
    0<TAB>run<TAB>0.0<TAB>3.2<TAB>q
    0<TAB>wait<TAB>3.2<TAB>3.4<TAB>-
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ParseError
from repro.taskpool.numa import NumaMachine
from repro.taskpool.pool import PoolRunResult, Segment, WorkerTrace

__all__ = ["dumps", "dump", "loads", "load"]

_MAGIC = "# taskpool-trace 1"


def dumps(result: PoolRunResult) -> str:
    """Serialize a pool run to the trace-log text format."""
    m = result.machine
    lines = [
        _MAGIC,
        f"# sockets {m.n_sockets} cores_per_socket {m.cores_per_socket} "
        f"core_speed {m.core_speed!r} bandwidth {m.socket_bandwidth!r}",
        f"# tasks {result.total_tasks} makespan {result.makespan!r}",
    ]
    for trace in result.traces:
        for seg in trace.segments:
            task = seg.task_id if seg.task_id else "-"
            lines.append(f"{trace.worker}\t{seg.kind}\t{seg.start!r}\t"
                         f"{seg.end!r}\t{task}")
    return "\n".join(lines) + "\n"


def loads(text: str, *, source: str = "<string>") -> PoolRunResult:
    """Parse a trace log back into a :class:`PoolRunResult`."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != _MAGIC:
        raise ParseError("not a taskpool trace (bad magic line)", source=source)

    machine: NumaMachine | None = None
    total_tasks = 0
    makespan = 0.0
    traces: dict[int, WorkerTrace] = {}
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            fields = line[1:].split()
            if fields[:1] == ["sockets"]:
                try:
                    machine = NumaMachine(
                        int(fields[1]), int(fields[3]),
                        float(fields[5]), float(fields[7]))
                except (IndexError, ValueError) as exc:
                    raise ParseError(f"bad machine line: {exc}",
                                     source=source, line=lineno) from exc
            elif fields[:1] == ["tasks"]:
                try:
                    total_tasks = int(fields[1])
                    makespan = float(fields[3])
                except (IndexError, ValueError) as exc:
                    raise ParseError(f"bad summary line: {exc}",
                                     source=source, line=lineno) from exc
            continue
        parts = line.split("\t")
        if len(parts) != 5:
            raise ParseError(f"expected 5 tab-separated fields, got {len(parts)}",
                             source=source, line=lineno)
        try:
            worker = int(parts[0])
            kind = parts[1]
            start, end = float(parts[2]), float(parts[3])
        except ValueError as exc:
            raise ParseError(f"bad segment: {exc}", source=source,
                             line=lineno) from exc
        if kind not in ("run", "wait"):
            raise ParseError(f"unknown segment kind {kind!r}", source=source,
                             line=lineno)
        task_id = None if parts[4] == "-" else parts[4]
        traces.setdefault(worker, WorkerTrace(worker)).segments.append(
            Segment(kind, start, end, task_id))

    if machine is None:
        raise ParseError("trace lacks the machine header line", source=source)
    for worker in range(machine.n_workers):
        traces.setdefault(worker, WorkerTrace(worker))
    ordered = [traces[w] for w in sorted(traces)]
    if any(w >= machine.n_workers for w in traces):
        raise ParseError("segment references a worker outside the machine",
                         source=source)
    return PoolRunResult(machine, ordered, total_tasks, makespan)


def dump(result: PoolRunResult, path: str | Path) -> None:
    Path(path).write_text(dumps(result), encoding="utf-8")


def load(path: str | Path) -> PoolRunResult:
    path = Path(path)
    return loads(path.read_text(encoding="utf-8"), source=str(path))
