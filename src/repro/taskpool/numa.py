"""NUMA machine model for the task-pool runtime (paper Section VI).

The case study machine is an SGI Altix 4700: 32 dual-core Itanium2 sockets,
i.e. 64 cores grouped 2 per socket, each socket with its own memory bus.
The model here captures what the case study needs:

* ``n_workers`` identical cores grouped into sockets;
* per-socket memory bandwidth shared by the tasks running on that socket's
  cores (processor-sharing / fluid model, see :mod:`repro.taskpool.pool`).

"even two tasks with equal-sized arrays may take a different time to
execute" — that asymmetry emerges exactly when sockets carry different
numbers of memory-hungry tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["NumaMachine", "altix_4700"]


@dataclass(frozen=True, slots=True)
class NumaMachine:
    """A NUMA machine: cores grouped into equal sockets."""

    n_sockets: int
    cores_per_socket: int
    core_speed: float = 1.6e9        # operations per second per core
    socket_bandwidth: float = 3.2e9  # bytes per second per socket memory bus

    def __post_init__(self) -> None:
        if self.n_sockets < 1 or self.cores_per_socket < 1:
            raise SimulationError(
                f"need >= 1 socket and core, got {self.n_sockets}x{self.cores_per_socket}")
        if self.core_speed <= 0 or self.socket_bandwidth <= 0:
            raise SimulationError("speed and bandwidth must be > 0")

    @property
    def n_workers(self) -> int:
        return self.n_sockets * self.cores_per_socket

    def socket_of(self, worker: int) -> int:
        """Socket index of a worker (cores are numbered socket-major)."""
        if not 0 <= worker < self.n_workers:
            raise SimulationError(
                f"worker {worker} out of range 0..{self.n_workers - 1}")
        return worker // self.cores_per_socket

    def workers_of(self, socket: int) -> range:
        if not 0 <= socket < self.n_sockets:
            raise SimulationError(f"socket {socket} out of range 0..{self.n_sockets - 1}")
        lo = socket * self.cores_per_socket
        return range(lo, lo + self.cores_per_socket)


def altix_4700(n_workers: int = 64, *, core_speed: float = 1.6e9,
               socket_bandwidth: float = 3.2e9) -> NumaMachine:
    """The case-study machine: dual-core sockets at 1.6 GHz.

    ``n_workers`` must be even; the paper uses 32 and 64 worker
    configurations of the 32-socket machine.
    """
    if n_workers % 2:
        raise SimulationError(f"dual-core sockets need an even worker count, got {n_workers}")
    return NumaMachine(n_workers // 2, 2, core_speed, socket_bandwidth)
