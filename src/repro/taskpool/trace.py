"""Bridge: task-pool worker traces -> Jedule schedules.

The run-time environment "is able to log run-time information about each
task for offline analysis in Jedule" (Section VI-B).  This module is that
logger's output end: it turns :class:`~repro.taskpool.pool.WorkerTrace`
segments into a Jedule schedule where each worker is one resource row,
``run`` segments become ``computation`` tasks (blue in Figures 11/12) and
``wait`` segments become ``wait`` tasks (red).

Workers can be grouped one cluster per socket (showing the NUMA structure)
or flat as a single cluster.
"""

from __future__ import annotations

from repro.core.model import Cluster, Configuration, Schedule, Task
from repro.taskpool.pool import PoolRunResult

__all__ = ["pool_result_to_schedule"]


def pool_result_to_schedule(
    result: PoolRunResult,
    *,
    group_by_socket: bool = False,
    min_duration: float = 0.0,
    include_waits: bool = True,
    run_type: str = "computation",
    wait_type: str = "wait",
) -> Schedule:
    """Convert a pool run into a Jedule schedule.

    ``min_duration`` drops segments shorter than that many seconds — with
    hundreds of thousands of fine-grained tasks the visual output is
    identical but far cheaper to draw; statistics should be computed on the
    unfiltered result instead.
    """
    machine = result.machine
    schedule = Schedule(meta={
        "machine": f"{machine.n_sockets}x{machine.cores_per_socket} cores",
        "tasks": str(result.total_tasks),
        "makespan": f"{result.makespan:.6g}",
    })
    if group_by_socket:
        for s in range(machine.n_sockets):
            schedule.add_cluster(Cluster(str(s), machine.cores_per_socket,
                                         f"socket {s}"))
    else:
        schedule.add_cluster(Cluster("0", machine.n_workers, "workers"))

    def placement(worker: int) -> Configuration:
        if group_by_socket:
            return Configuration(str(machine.socket_of(worker)),
                                 [(worker % machine.cores_per_socket, 1)])
        return Configuration("0", [(worker, 1)])

    seq = 0
    for trace in result.traces:
        conf = placement(trace.worker)
        for seg in trace.segments:
            if seg.duration < min_duration:
                continue
            if seg.kind == "wait" and not include_waits:
                continue
            task_type = run_type if seg.kind == "run" else wait_type
            task_id = seg.task_id if seg.task_id else f"w{trace.worker}.{seq}"
            # ids must be unique; the same pool task never spans workers, but
            # wait segments need synthesized ids
            schedule.add_task(Task(
                task_id if seg.kind == "run" else f"{task_id}",
                task_type, seg.start, seg.end, [conf],
                meta={"worker": str(trace.worker)},
            ))
            seq += 1
    return schedule
