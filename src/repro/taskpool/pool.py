"""Task-pool runtime simulator (paper Section VI, Figure 10).

Simulates the execution scheme of Figure 10: a virtually shared pool of
fine-grained tasks; each worker loops ``get() -> execute() -> free()``,
where ``execute`` may create new tasks.  The run-time environment logs, per
worker, the time spent executing tasks and the time spent getting/waiting
for tasks — exactly the two colors of Figures 11 and 12.

Execution times come from a *fluid* NUMA model: a task ``i`` has a CPU work
``cpu_ops`` and a memory volume ``mem_bytes``.  Alone on a socket it runs
for ``T_i = max(cpu_ops / core_speed, mem_bytes / socket_bandwidth)`` and
demands bandwidth ``d_i = mem_bytes / T_i``.  When the tasks concurrently
running on one socket demand more than the socket bus provides, all of them
progress at the common factor ``f = B / sum(d_i) < 1`` until the running set
changes (progress is integrated event-by-event).  This is the standard
processor-sharing approximation of memory-bus contention and yields the
paper's observation that equal tasks take unequal times when sockets are
unevenly loaded.
"""

from __future__ import annotations

import enum
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import SimulationError
from repro.simulate.engine import EventHandle, SimEngine
from repro.taskpool.numa import NumaMachine

__all__ = ["PoolTask", "TaskPoolApp", "PoolPolicy", "PoolLayout", "Segment",
           "WorkerTrace", "PoolRunResult", "TaskPoolSim"]


@dataclass(frozen=True, slots=True)
class PoolTask:
    """One unit of work in the pool."""

    id: str
    cpu_ops: float
    mem_bytes: float = 0.0
    payload: object = None

    def __post_init__(self) -> None:
        if self.cpu_ops < 0 or self.mem_bytes < 0:
            raise SimulationError(f"task {self.id!r}: negative work")


class TaskPoolApp(Protocol):
    """An application running on the pool (Figure 10's structure)."""

    def initial_tasks(self) -> Iterable[PoolTask]:
        """The master thread's ``create_initial_task`` calls."""
        ...

    def expand(self, task: PoolTask) -> Iterable[PoolTask]:
        """Tasks created by executing ``task`` (may be empty)."""
        ...


class PoolPolicy(enum.Enum):
    """Order tasks leave the central pool."""

    LIFO = "lifo"
    FIFO = "fifo"


class PoolLayout(enum.Enum):
    """How the pool stores tasks (paper: "the actual storing may use central
    or distributed data structures ... hidden behind the task pool
    interface")."""

    CENTRAL = "central"
    #: per-worker deques with work stealing: owners pop newest (depth-first,
    #: cache-warm), thieves steal the oldest task from the longest victim
    #: queue (big subtrees migrate, classic Cilk-style)
    STEAL = "steal"


@dataclass(frozen=True, slots=True)
class Segment:
    """One trace segment of a worker."""

    kind: str          # "run" or "wait"
    start: float
    end: float
    task_id: str | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class WorkerTrace:
    """Per-worker segments in time order."""

    worker: int
    segments: list[Segment] = field(default_factory=list)

    def busy_time(self) -> float:
        return sum(s.duration for s in self.segments if s.kind == "run")

    def wait_time(self) -> float:
        return sum(s.duration for s in self.segments if s.kind == "wait")


@dataclass
class PoolRunResult:
    """Outcome of a task-pool simulation."""

    machine: NumaMachine
    traces: list[WorkerTrace]
    total_tasks: int
    makespan: float

    def busy_fraction(self) -> float:
        span = self.makespan * self.machine.n_workers
        if span <= 0:
            return 0.0
        return sum(t.busy_time() for t in self.traces) / span


@dataclass
class _Running:
    """A task in flight: progress bookkeeping for the fluid model."""

    task: PoolTask
    worker: int
    socket: int
    start: float
    nominal: float          # duration at full rate
    remaining: float        # nominal-time units still to execute
    demand: float           # bandwidth demand at full rate
    last_update: float
    rate: float = 1.0
    completion: EventHandle | None = None


class TaskPoolSim:
    """Discrete-event simulation of the task-pool runtime."""

    def __init__(
        self,
        machine: NumaMachine,
        app: TaskPoolApp,
        *,
        policy: PoolPolicy | str = PoolPolicy.LIFO,
        layout: PoolLayout | str = PoolLayout.CENTRAL,
        pool_overhead: float = 2e-6,
        duration_jitter: float = 0.0,
        jitter_seed: int = 0,
        max_events: int = 5_000_000,
    ):
        if isinstance(policy, str):
            policy = PoolPolicy(policy.lower())
        if isinstance(layout, str):
            layout = PoolLayout(layout.lower())
        if pool_overhead < 0:
            raise SimulationError(f"negative pool overhead {pool_overhead}")
        if duration_jitter < 0:
            raise SimulationError(f"negative duration jitter {duration_jitter}")
        self.machine = machine
        self.app = app
        self.policy = policy
        self.layout = layout
        self.pool_overhead = pool_overhead
        #: relative sigma of per-task lognormal duration noise — models the
        #: run-to-run variance of a real machine (cache state, OS noise) that
        #: the paper's Section VI-B invokes for the mid-run utilization hole
        self.duration_jitter = duration_jitter
        self._jitter_rng = None
        if duration_jitter > 0:
            import numpy as _np

            self._jitter_rng = _np.random.default_rng(jitter_seed)
        self.max_events = max_events

        self._engine = SimEngine()
        self._queue: deque[PoolTask] = deque()
        self._local: list[deque[PoolTask]] = [deque() for _ in range(machine.n_workers)]
        self._steals = 0
        self._idle: list[int] = []                 # workers waiting for a task
        self._wait_since: dict[int, float] = {}    # worker -> wait segment start
        self._running: dict[int, _Running] = {}    # worker -> in-flight task
        self._by_socket: dict[int, set[int]] = {s: set() for s in range(machine.n_sockets)}
        self._traces = [WorkerTrace(w) for w in range(machine.n_workers)]
        self._outstanding = 0                      # tasks queued or running
        self._total = 0

    # --------------------------------------------------------------- fluid
    def _nominal_duration(self, task: PoolTask) -> float:
        cpu = task.cpu_ops / self.machine.core_speed
        mem = task.mem_bytes / self.machine.socket_bandwidth
        base = max(cpu, mem, 1e-12)
        if self._jitter_rng is not None:
            base *= float(self._jitter_rng.lognormal(0.0, self.duration_jitter))
        return base

    def _update_socket(self, socket: int) -> None:
        """Integrate progress, recompute the shared rate, reschedule finishes."""
        now = self._engine.now
        members = [self._running[w] for w in self._by_socket[socket]]
        total_demand = 0.0
        for r in members:
            r.remaining -= (now - r.last_update) * r.rate
            r.remaining = max(r.remaining, 0.0)
            r.last_update = now
            total_demand += r.demand
        bw = self.machine.socket_bandwidth
        rate = 1.0 if total_demand <= bw else bw / total_demand
        for r in members:
            r.rate = rate
            if r.completion is not None:
                r.completion.cancel()
            r.completion = self._engine.at(
                now + r.remaining / rate,
                lambda w=r.worker: self._finish(w),
            )

    # ------------------------------------------------------------- workers
    def _push(self, task: PoolTask, producer: int | None = None) -> None:
        if self.layout is PoolLayout.STEAL and producer is not None:
            self._local[producer].append(task)
        else:
            self._queue.append(task)
        self._outstanding += 1
        self._total += 1

    def _pop(self) -> PoolTask:
        return self._queue.pop() if self.policy is PoolPolicy.LIFO \
            else self._queue.popleft()

    @property
    def steals(self) -> int:
        """Number of successful steals so far (STEAL layout only)."""
        return self._steals

    def _acquire(self, worker: int) -> PoolTask | None:
        """One get() under the configured layout, or None when empty."""
        if self.layout is PoolLayout.CENTRAL:
            return self._pop() if self._queue else None
        own = self._local[worker]
        if own:
            # owner end: newest first (depth-first) under LIFO policy
            return own.pop() if self.policy is PoolPolicy.LIFO else own.popleft()
        if self._queue:  # tasks without a producer (the master's initial set)
            return self._pop()
        # steal from the longest victim queue; ties to the lowest worker id
        victim = max(range(len(self._local)),
                     key=lambda wid: (len(self._local[wid]), -wid))
        if self._local[victim]:
            self._steals += 1
            return self._local[victim].popleft()  # oldest = biggest subtree
        return None

    def _try_dispatch(self) -> None:
        """Hand available tasks to idle workers (FIFO over workers)."""
        while self._idle:
            worker = self._idle[0]
            task = self._acquire(worker)
            if task is None:
                return
            self._idle.pop(0)
            self._start_task(worker, task)

    def _start_task(self, worker: int, task: PoolTask) -> None:
        now = self._engine.now
        wait_start = self._wait_since.pop(worker)
        start = now + self.pool_overhead  # the get() call itself
        trace = self._traces[worker]
        if start > wait_start:
            trace.segments.append(Segment("wait", wait_start, start))
        # The task joins its socket at its actual start instant, so the
        # fluid bookkeeping never sees it before it runs.
        self._engine.at(start, lambda: self._begin_run(worker, task, start))

    def _begin_run(self, worker: int, task: PoolTask, start: float) -> None:
        nominal = self._nominal_duration(task)
        running = _Running(
            task=task, worker=worker, socket=self.machine.socket_of(worker),
            start=start, nominal=nominal, remaining=nominal,
            demand=task.mem_bytes / nominal, last_update=start,
        )
        self._running[worker] = running
        self._by_socket[running.socket].add(worker)
        self._update_socket(running.socket)

    def _finish(self, worker: int) -> None:
        running = self._running.pop(worker)
        self._by_socket[running.socket].discard(worker)
        now = self._engine.now
        self._traces[worker].segments.append(
            Segment("run", running.start, now, running.task.id))
        self._outstanding -= 1
        for child in self.app.expand(running.task):
            self._push(child, producer=worker)
        # the free() call, then ask for the next task
        self._wait_since[worker] = now
        self._idle.append(worker)
        self._update_socket(running.socket)
        self._try_dispatch()

    # ----------------------------------------------------------------- run
    def run(self) -> PoolRunResult:
        """Execute the application to completion and return the traces."""
        for task in self.app.initial_tasks():
            self._push(task)
        if self._outstanding == 0:
            raise SimulationError("application created no initial tasks")
        for worker in range(self.machine.n_workers):
            self._wait_since[worker] = 0.0
            self._idle.append(worker)
        self._try_dispatch()
        # The event calendar drains exactly when all tasks have finished:
        # every completion either spawns work (new events) or not.
        self._engine.run(max_events=self.max_events)
        if self._outstanding != 0:
            raise SimulationError(
                f"simulation ended with {self._outstanding} unfinished task(s)")
        makespan = self._engine.now
        # Close trailing wait segments so every worker's trace spans the run.
        for worker, since in self._wait_since.items():
            if makespan > since:
                self._traces[worker].segments.append(Segment("wait", since, makespan))
        self._wait_since.clear()
        return PoolRunResult(self.machine, self._traces, self._total, makespan)
