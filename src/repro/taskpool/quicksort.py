"""Parallel Quicksort as a task-pool application (Figures 11 and 12).

The case study sorts integer arrays with a task per partition step: a
partition task over ``n`` elements creates two child tasks for the two
sub-arrays (when they exceed a sequential-sort threshold).  Two input
variants drive the two figures:

* ``random`` — a random input array.  The pivot splits each range at a
  random fraction; the paper's run hit "an accidental bad choice of the
  pivot element" on the very first partition, so ``first_split`` lets a
  bench pin that initial fraction (e.g. 0.05).
* ``inverse`` — an inversely sorted array with middle-element pivots.  The
  split is perfectly even, but partitioning must swap *every pair* of
  elements, so per-element cost is higher — the single initial task runs
  for almost half the total time (Figure 12) — and the memory traffic per
  element is roughly doubled, which is what excites the NUMA contention
  hole later in the run.

The simulation never materializes arrays: a task's payload is just the
range size (plus the split behaviour), so hundreds of thousands of tasks —
the paper reports runs beyond 200,000 tasks — cost only events.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.taskpool.pool import PoolTask

__all__ = ["QuicksortApp"]


@dataclass(frozen=True, slots=True)
class _Range:
    """Payload of a partition task: how many elements it covers."""

    size: int
    depth: int


class QuicksortApp:
    """Task generator for the parallel Quicksort case study."""

    def __init__(
        self,
        n: int,
        *,
        variant: str = "random",
        threshold: int | None = None,
        cost_per_element: float = 12.0,       # operations per element partitioned
        bytes_per_element: float = 8.0,       # memory traffic per element scanned
        first_split: float | None = None,
        seed: int | None = 0,
    ):
        if n < 2:
            raise SimulationError(f"need >= 2 elements, got {n}")
        if variant not in ("random", "inverse"):
            raise SimulationError(f"unknown variant {variant!r}")
        if threshold is None:
            threshold = max(1024, n // 4096)
        if threshold < 1:
            raise SimulationError(f"threshold must be >= 1, got {threshold}")
        if first_split is not None and not 0.0 < first_split < 1.0:
            raise SimulationError(f"first_split must be in (0, 1), got {first_split}")
        self.n = n
        self.variant = variant
        self.threshold = threshold
        self.cost_per_element = cost_per_element
        self.bytes_per_element = bytes_per_element
        self.first_split = first_split
        self._rng = np.random.default_rng(seed)
        # Inversely sorted input: every comparison leads to a swap, roughly
        # doubling the CPU work; the swap writes plus the extra cache misses
        # of the strided accesses multiply the memory traffic further, which
        # is what pushes two concurrent partitions past one socket's bus.
        self._cost_factor = 2.0 if variant == "inverse" else 1.0
        self._mem_factor = 4.0 if variant == "inverse" else 1.0

    # ----------------------------------------------------------- task costs
    def _partition_task(self, task_id: str, size: int, depth: int) -> PoolTask:
        cpu = self.cost_per_element * self._cost_factor * size
        mem = self.bytes_per_element * self._mem_factor * size
        return PoolTask(task_id, cpu, mem, _Range(size, depth))

    def _leaf_task(self, task_id: str, size: int, depth: int) -> PoolTask:
        # Sequential sort of a small range: ~ c * n log2 n compare/swaps and
        # one read+write stream per pass.  Sub-ranges of the adversarial
        # (inversely sorted) input keep their swap-heavy pattern, so the
        # variant factors apply to leaves too.
        logn = max(math.log2(max(size, 2)), 1.0)
        cpu = self.cost_per_element * self._cost_factor * size * logn
        mem = self.bytes_per_element * self._mem_factor * size * logn
        return PoolTask(task_id, cpu, mem, _Range(size, depth))

    def _split_fraction(self, depth: int) -> float:
        if self.variant == "inverse":
            return 0.5
        if depth == 0 and self.first_split is not None:
            return self.first_split
        # A uniformly random pivot splits the range at a uniform fraction.
        return float(self._rng.uniform(0.02, 0.98))

    # --------------------------------------------------------- app protocol
    def initial_tasks(self) -> Iterable[PoolTask]:
        yield self._partition_task("q", self.n, 0)

    def expand(self, task: PoolTask) -> Iterable[PoolTask]:
        payload = task.payload
        if not isinstance(payload, _Range):
            raise SimulationError(f"foreign task {task.id!r} in QuicksortApp")
        if payload.size <= self.threshold:
            return []  # leaf: the sequential sort already happened in this task
        frac = self._split_fraction(payload.depth)
        left = max(int(payload.size * frac), 1)
        right = max(payload.size - left - 1, 0)  # pivot stays in place
        children = []
        for suffix, size in (("l", left), ("r", right)):
            if size <= 0:
                continue
            child_id = f"{task.id}{suffix}"
            if size <= self.threshold:
                children.append(self._leaf_task(child_id, size, payload.depth + 1))
            else:
                children.append(self._partition_task(child_id, size, payload.depth + 1))
        return children
