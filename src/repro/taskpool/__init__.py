"""Task-pool runtime simulator with NUMA contention (Section VI)."""

from repro.taskpool.numa import NumaMachine, altix_4700
from repro.taskpool.pool import (
    PoolLayout,
    PoolPolicy,
    PoolRunResult,
    PoolTask,
    Segment,
    TaskPoolApp,
    TaskPoolSim,
    WorkerTrace,
)
from repro.taskpool import logfmt
from repro.taskpool.quicksort import QuicksortApp
from repro.taskpool.trace import pool_result_to_schedule

__all__ = [
    "NumaMachine",
    "PoolLayout",
    "PoolPolicy",
    "PoolRunResult",
    "PoolTask",
    "QuicksortApp",
    "Segment",
    "TaskPoolApp",
    "TaskPoolSim",
    "WorkerTrace",
    "altix_4700",
    "logfmt",
    "pool_result_to_schedule",
]
