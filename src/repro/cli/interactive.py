"""Interactive terminal mode.

The original tool opens a Swing window; here the interactive mode is a
terminal REPL over the same viewport/selection machinery
(:mod:`repro.core.viewport`, :mod:`repro.core.select`), so every GUI
affordance of Section II-D-1 has a command equivalent:

========================  =====================================================
GUI action                command
========================  =====================================================
mouse-wheel zoom           ``+`` / ``-`` (zoom in/out about the view center)
drag to pan                ``h`` / ``l`` (left/right), ``j`` / ``k`` (down/up)
rubber-band zoom           ``w T0 T1`` (time window), ``r R0 R1`` (row window)
click a task               ``i TASKID`` (prints start/finish + resource list)
select a cluster           ``c CLUSTERID`` (restrict to one cluster)
filter by type             ``t TYPE [TYPE...]``
reread file / reset        ``f`` (fit = reset view), ``reload``
snapshot/export            ``x FILE`` (any supported image format)
composite toggle           ``o``
quit                       ``q``
========================  =====================================================

The viewer reads commands from an injectable stream, so the whole mode is
unit-testable without a TTY.
"""

from __future__ import annotations

import shlex
import sys
from pathlib import Path
from typing import IO

from repro.core.composite import with_composites
from repro.core.model import Schedule
from repro.core.select import Selection, describe_task
from repro.core.viewport import Viewport
from repro.errors import ReproError
from repro.io import load_schedule
from repro.render.api import export_schedule
from repro.render.backends.ascii_art import render_ascii

__all__ = ["InteractiveViewer"]


class InteractiveViewer:
    """A REPL over a schedule, mirroring the Swing interactive mode."""

    PROMPT = "jedule> "

    def __init__(
        self,
        schedule: Schedule,
        *,
        width: int = 100,
        ansi: bool = False,
        source_path: str | Path | None = None,
        stdin: IO[str] | None = None,
        stdout: IO[str] | None = None,
    ):
        self._original = schedule
        self.schedule = schedule
        self.width = width
        self.ansi = ansi
        self.source_path = Path(source_path) if source_path else None
        self.viewport = Viewport.fit(schedule)
        self.selection = Selection(schedule)
        self.show_composites = False
        self._stdin = stdin if stdin is not None else sys.stdin
        self._stdout = stdout if stdout is not None else sys.stdout

    # ------------------------------------------------------------------ io
    def _print(self, text: str = "") -> None:
        self._stdout.write(text + "\n")

    def draw(self) -> None:
        """Render the current view to the output stream."""
        schedule = self.schedule
        if self.show_composites:
            schedule = with_composites(schedule)
        self._print(render_ascii(schedule, width=self.width, ansi=self.ansi,
                                 viewport=self.viewport))

    # ------------------------------------------------------------ commands
    def handle(self, line: str) -> bool:
        """Execute one command line; returns False when the session ends."""
        try:
            parts = shlex.split(line)
        except ValueError as exc:
            self._print(f"parse error: {exc}")
            return True
        if not parts:
            return True
        cmd, *args = parts
        try:
            return self._dispatch(cmd, args)
        except (ReproError, ValueError, IndexError) as exc:
            self._print(f"error: {exc}")
            return True

    def _dispatch(self, cmd: str, args: list[str]) -> bool:
        if cmd == "q":
            return False
        if cmd == "+":
            self.viewport = self.viewport.zoom(1.5)
        elif cmd == "-":
            self.viewport = self.viewport.zoom(1 / 1.5).clamped_to(
                Viewport.fit(self.schedule))
        elif cmd == "h":
            self.viewport = self.viewport.pan_fraction(-0.25)
        elif cmd == "l":
            self.viewport = self.viewport.pan_fraction(+0.25)
        elif cmd == "k":
            self.viewport = self.viewport.pan_fraction(0, -0.25)
        elif cmd == "j":
            self.viewport = self.viewport.pan_fraction(0, +0.25)
        elif cmd == "f":
            self.schedule = self._original
            self.viewport = Viewport.fit(self.schedule)
        elif cmd == "w":
            self.viewport = self.viewport.zoom_to(float(args[0]), float(args[1]))
        elif cmd == "r":
            self.viewport = self.viewport.zoom_to(
                self.viewport.t0, self.viewport.t1, float(args[0]), float(args[1]))
        elif cmd == "i":
            info = describe_task(self.schedule.task(args[0]))
            for text in info.lines():
                self._print(text)
            return True
        elif cmd == "s":
            selected = self.selection.toggle(args[0])
            self._print(f"task {args[0]} {'selected' if selected else 'deselected'}")
            return True
        elif cmd == "c":
            self.schedule = self._original.filtered(clusters=args)
            self.viewport = Viewport.fit(self.schedule)
        elif cmd == "t":
            self.schedule = self._original.filtered(types=args)
            self.viewport = Viewport.fit(self.schedule)
        elif cmd == "o":
            self.show_composites = not self.show_composites
            self._print(f"composites {'on' if self.show_composites else 'off'}")
        elif cmd == "u":
            self._print(self._utilization_sparkline())
            return True
        elif cmd == "x":
            schedule = with_composites(self.schedule) if self.show_composites \
                else self.schedule
            export_schedule(schedule, args[0], viewport=self.viewport)
            self._print(f"wrote {args[0]}")
            return True
        elif cmd == "reload":
            if self.source_path is None:
                self._print("no source file to reload")
                return True
            self._original = load_schedule(self.source_path)
            self.schedule = self._original
            self.selection = Selection(self.schedule)
            self._print(f"reloaded {self.source_path} ({len(self.schedule)} tasks)")
        elif cmd in ("help", "?"):
            self._print(__doc__ or "")
            return True
        else:
            self._print(f"unknown command {cmd!r} (try 'help')")
            return True
        self.draw()
        return True

    def _utilization_sparkline(self) -> str:
        """Busy-host counts over the visible window as a text sparkline."""
        from repro.core.stats import utilization_profile

        profile = utilization_profile(self.schedule)
        blocks = " ▁▂▃▄▅▆▇█"
        hosts = max(self.schedule.num_hosts, 1)
        cols = []
        for i in range(self.width):
            t = self.viewport.t0 + (i + 0.5) / self.width * self.viewport.time_span
            level = profile.value_at(t) / hosts
            cols.append(blocks[min(int(level * (len(blocks) - 1) + 0.5),
                                   len(blocks) - 1)])
        peak = profile.peak
        return f"busy hosts (peak {peak}/{hosts}):\n" + "".join(cols)

    # ---------------------------------------------------------------- loop
    def run(self) -> int:
        """Blocking REPL loop; returns a process exit code."""
        try:
            self.draw()
            while True:
                self._stdout.write(self.PROMPT)
                self._stdout.flush()
                line = self._stdin.readline()
                if not line:  # EOF
                    return 0
                if not self.handle(line):
                    return 0
        except BrokenPipeError:  # output consumer went away (e.g. | head)
            return 0
