"""``jedule top``: a live terminal dashboard for the render service.

Polls ``/statz`` (queue, workers, job states, counters) and ``/metricz``
(Prometheus text — parsed back with
:func:`repro.serve.metrics.parse_prometheus_text`) and renders a compact
operator view: queue fill bar, worker health, per-stage latency
percentiles recovered from the scraped histogram buckets, throughput,
cache and rejection counters.

``--once`` prints a single snapshot and exits (scriptable, and what the
test suite drives); the default loop redraws every ``--interval``
seconds until interrupted.
"""

from __future__ import annotations

import math
import time

from repro.errors import ServeError
from repro.serve.metrics import parse_prometheus_text, quantile_from_buckets

__all__ = ["run_top", "render_dashboard"]

#: fixed stages always shown first, in pipeline order
_LEAD_STAGES = ("queue_wait", "worker", "total")

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_s(seconds: float) -> str:
    """A latency cell: ms below one second, seconds above."""
    if seconds < 1.0:
        return f"{seconds * 1e3:8.1f}ms"
    return f"{seconds:8.2f}s "


def _bar(value: float, total: float, width: int = 24) -> str:
    total = max(total, 1.0)
    filled = int(round(min(value / total, 1.0) * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _counter(parsed: dict, family: str,
             **labels: str) -> float:
    """One counter sample (0.0 when the family/labels never fired)."""
    want = tuple(sorted(labels.items()))
    for key, value in parsed.get(family, {}).items():
        if key == want:
            return value
    return 0.0


def _gauge(parsed: dict, family: str) -> float:
    samples = parsed.get(family, {})
    return next(iter(samples.values()), 0.0)


def _stage_table(parsed: dict) -> list[str]:
    buckets: dict[str, list[tuple[float, float]]] = {}
    for key, value in parsed.get(
            "jedule_serve_stage_seconds_bucket", {}).items():
        labels = dict(key)
        stage = labels.get("stage", "?")
        le = labels.get("le", "+Inf")
        le_f = math.inf if le == "+Inf" else float(le)
        buckets.setdefault(stage, []).append((le_f, value))
    counts = {dict(key).get("stage", "?"): value
              for key, value in parsed.get(
                  "jedule_serve_stage_seconds_count", {}).items()}
    stages = [s for s in _LEAD_STAGES if s in buckets]
    stages += sorted(s for s in buckets if s not in _LEAD_STAGES)
    lines = [f"  {'stage':<16} {'count':>7} {'p50':>10} {'p95':>10} "
             f"{'p99':>10}"]
    for stage in stages:
        series = buckets[stage]
        lines.append(
            f"  {stage:<16} {int(counts.get(stage, 0)):>7} "
            f"{_fmt_s(quantile_from_buckets(series, 0.50)):>10} "
            f"{_fmt_s(quantile_from_buckets(series, 0.95)):>10} "
            f"{_fmt_s(quantile_from_buckets(series, 0.99)):>10}")
    if len(lines) == 1:
        lines.append("  (no jobs finished yet)")
    return lines


def render_dashboard(statz: dict, metricz_text: str, *,
                     rate_jobs_per_s: float | None = None) -> str:
    """One dashboard frame from a /statz doc and a /metricz scrape."""
    parsed = parse_prometheus_text(metricz_text)
    queue = statz.get("queue", {})
    workers = statz.get("workers", {})
    depth = queue.get("depth", 0)
    capacity = queue.get("capacity", 0)
    uptime = statz.get("uptime_s", 0.0)
    counters = statz.get("counters", {})

    lines: list[str] = []
    state = "DRAINING" if statz.get("draining") else "serving"
    lines.append(f"jedule serve - {state}, up {uptime:.0f}s")
    lines.append("")
    lines.append(f"queue    {_bar(depth, capacity)} {depth}/{capacity}"
                 f"  peak {queue.get('peak', 0)}"
                 f"  clients {len(queue.get('by_client', {}))}")
    restarts = int(_counter(parsed, "jedule_serve_worker_restarts_total")
                   or workers.get("restarts", 0))
    lines.append(f"workers  {workers.get('alive', 0)}/"
                 f"{workers.get('total', 0)} alive"
                 f"  restarts {restarts}")
    ok = _counter(parsed, "jedule_serve_jobs_total", status="ok")
    failed = _counter(parsed, "jedule_serve_jobs_total", status="failed")
    submitted = counters.get("serve.jobs.submitted", 0)
    rate = rate_jobs_per_s if rate_jobs_per_s is not None \
        else ((ok + failed) / uptime if uptime > 0 else 0.0)
    lines.append(f"jobs     {int(submitted)} submitted  {int(ok)} ok  "
                 f"{int(failed)} failed  {rate:.2f} jobs/s")
    hits = _counter(parsed, "jedule_serve_cache_total", outcome="hit")
    misses = _counter(parsed, "jedule_serve_cache_total", outcome="miss")
    rejected = sum(parsed.get("jedule_serve_rejected_total", {}).values())
    busy = _counter(parsed, "jedule_serve_rejected_total",
                    reason="queue-full")
    nbytes = _counter(parsed, "jedule_serve_bytes_rendered_total")
    lines.append(f"cache    {int(hits)} hit / {int(misses)} miss"
                 f"  rejected {int(rejected)} ({int(busy)} busy/429)"
                 f"  rendered {nbytes / 1e6:.2f} MB")
    lines.append("")
    lines.extend(_stage_table(parsed))
    return "\n".join(lines) + "\n"


def run_top(*, url: str | None = None, socket_path: str | None = None,
            interval_s: float = 2.0, once: bool = False) -> int:
    """Drive the dashboard against a live daemon; returns an exit code."""
    from repro.serve.client import ServeClient

    client = ServeClient(url, socket_path=socket_path, client_id="jedule-top")
    if once:
        print(render_dashboard(client.statz(), client.metricz()), end="")
        return 0
    prev_done: float | None = None
    prev_t = time.monotonic()
    try:
        while True:
            try:
                statz = client.statz()
                metricz = client.metricz()
            except ServeError as exc:
                print(f"{_CLEAR}jedule top: {exc}", flush=True)
                time.sleep(interval_s)
                continue
            parsed = parse_prometheus_text(metricz)
            done = (_counter(parsed, "jedule_serve_jobs_total", status="ok")
                    + _counter(parsed, "jedule_serve_jobs_total",
                               status="failed"))
            now = time.monotonic()
            rate = None
            if prev_done is not None and now > prev_t:
                rate = max(done - prev_done, 0.0) / (now - prev_t)
            prev_done, prev_t = done, now
            frame = render_dashboard(statz, metricz, rate_jobs_per_s=rate)
            print(f"{_CLEAR}{frame}", end="", flush=True)
            time.sleep(interval_s)
    except KeyboardInterrupt:
        print()
        return 0
