"""Command-line mode (paper Section II-D-2).

Subcommands::

    jedule render   schedule.jed -o out.png [--cmap map.xml] [--grayscale] ...
    jedule batch    manifest.json [--jobs N] [--no-cache] ...
    jedule serve    [--port P | --socket PATH] [--workers N] ...
    jedule submit   --url URL (--manifest man.json | inputs ...)
    jedule top      --url URL [--interval S | --once]
    jedule convert  schedule.jed out.json
    jedule info     schedule.jed
    jedule validate schedule.jed
    jedule view     schedule.jed          (terminal interactive mode)

``render`` supports the parameters the paper names: output format, color
map, width/height, scaled/aligned cluster time frames, plus style files,
grayscale conversion, composite-task synthesis, type/cluster filters and a
time window.  ``batch`` mass-produces a whole manifest of figures through
the parallel, content-addressed-cached runner in :mod:`repro.batch`.

Every subcommand loads its inputs through
:func:`repro.io.registry.load_schedule`, so explicit ``--input-format``,
suffix dispatch and content sniffing all behave identically everywhere,
and renders through a single :class:`repro.render.api.RenderRequest`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.stats import idle_area, per_type_area, utilization
from repro.core.timeframe import ViewMode
from repro.core.validate import validate_schedule
from repro.errors import ReproError
from repro.io import load_schedule, save_schedule
from repro.io.registry import available_formats
from repro.render.api import OUTPUT_FORMATS, RenderRequest, execute_request
from repro.render.lod import LOD_MODES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jedule",
        description="Visualize schedules of parallel applications (Jedule reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input(p: argparse.ArgumentParser) -> None:
        p.add_argument("input", help="schedule file")
        p.add_argument("--input-format", choices=available_formats(),
                       help="force the input format (default: by suffix)")

    render = sub.add_parser("render", help="export schedule pictures")
    render.add_argument("input", nargs="+",
                        help="schedule file(s); several inputs need --outdir")
    render.add_argument("--input-format", choices=available_formats(),
                        help="force the input format (default: by suffix)")
    out = render.add_mutually_exclusive_group(required=True)
    out.add_argument("-o", "--output", help="output image file (single input)")
    out.add_argument("--outdir", help="output directory for batch rendering "
                                      "(one image per input; needs --format)")
    render.add_argument("--format", choices=sorted(OUTPUT_FORMATS),
                        help="output format (default: by suffix)")
    render.add_argument("--with-profile", action="store_true",
                        help="stack the utilization profile under the chart")
    render.add_argument("--cmap", help="color map XML file")
    render.add_argument("--grayscale", action="store_true",
                        help="convert the color map to grayscale")
    render.add_argument("--style", help="style file (key = value lines)")
    render.add_argument("--width", type=int, default=900)
    render.add_argument("--height", type=int, default=480)
    render.add_argument("--mode", choices=[m.value for m in ViewMode],
                        default=ViewMode.ALIGNED.value,
                        help="align cluster time frames or scale them locally")
    render.add_argument("--lod", choices=list(LOD_MODES), default="auto",
                        help="level-of-detail aggregation for large schedules "
                             "(auto: only when tasks outnumber pixels)")
    render.add_argument("--title", help="title drawn above the chart")
    render.add_argument("--html-threshold", type=int, metavar="N",
                        help="html backend: embed raw tasks up to N of them, "
                             "LOD cell tiers beyond (default 4000)")
    render.add_argument("--html-tiers", type=int, metavar="K",
                        help="html backend: number of LOD zoom tiers to "
                             "embed (1..6, default 3)")
    render.add_argument("--composites", action="store_true",
                        help="synthesize composite tasks for overlaps")
    render.add_argument("--auto-colors", metavar="METAKEY", nargs="?", const="",
                        help="auto-assign colors per task type, or per value of a meta key")
    render.add_argument("--types", nargs="+", help="only draw these task types")
    render.add_argument("--clusters", nargs="+", help="only draw these clusters")
    render.add_argument("--window", nargs=2, type=float, metavar=("T0", "T1"),
                        help="restrict to a time window")
    render.add_argument("--trace", metavar="OUT.json",
                        help="write a Chrome trace-event JSON of this run "
                             "(open in chrome://tracing or Perfetto)")
    render.add_argument("--stats", action="store_true",
                        help="print a per-stage timing/counter summary "
                             "after rendering")
    render.add_argument("--trace-gantt", metavar="OUT",
                        help="render this run's own execution trace as a "
                             "Gantt chart (spans as tasks, stages as bands)")
    render.add_argument("--log-json", metavar="OUT.jsonl",
                        help="write structured JSONL logs of this run (one "
                             "event per pipeline span/counter, span ids "
                             "shared with --trace)")
    render.add_argument("--runlog", metavar="RUNLOG.jsonl",
                        help="append a run record (stage timings, counters, "
                             "schedule metrics, env fingerprint) to this "
                             "JSONL run registry")

    batch = sub.add_parser("batch",
                           help="render a whole manifest of figures in "
                                "parallel, with a content-addressed cache")
    batch.add_argument("manifest", help="batch manifest JSON file")
    batch.add_argument("-j", "--jobs", type=int,
                       help="worker processes (default: all CPU cores)")
    batch.add_argument("--cache-dir",
                       help="render cache directory (default: from the "
                            "manifest, else '.jedule-cache' next to it)")
    batch.add_argument("--no-cache", action="store_true",
                       help="render everything, bypassing the cache")
    batch.add_argument("--timeout", type=float, metavar="SECONDS",
                       help="per-batch deadline; unfinished jobs fail")
    batch.add_argument("--retries", type=int, default=1,
                       help="extra attempts for failed jobs (default: 1)")
    batch.add_argument("--stats", action="store_true",
                       help="print a per-stage timing/counter summary")
    batch.add_argument("--trace", metavar="OUT.json",
                       help="write a Chrome trace-event JSON of this run")
    batch.add_argument("--runlog", metavar="RUNLOG.jsonl",
                       help="append a batch run record (jobs, cache "
                            "hits/misses, timings) to this JSONL registry")

    serve = sub.add_parser("serve",
                           help="long-lived render service: warm worker "
                                "pool, fair job queue, shared render cache")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8734,
                       help="TCP port (default: 8734; 0 picks a free port)")
    serve.add_argument("--socket", metavar="PATH",
                       help="serve on a Unix domain socket instead of TCP")
    serve.add_argument("--workers", type=int, default=2,
                       help="warm render worker processes (default: 2)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="max queued jobs before 429 backpressure "
                            "(default: 64)")
    serve.add_argument("--cache-dir",
                       help="shared render cache directory "
                            "(default: '.jedule-cache')")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the content-addressed render cache")
    serve.add_argument("--job-timeout", type=float, metavar="SECONDS",
                       help="kill a worker stuck on one job this long")
    serve.add_argument("--runlog", metavar="RUNLOG.jsonl",
                       help="append a service run record (job counts, cache "
                            "hits, latency percentiles) at drain time")
    serve.add_argument("--no-trace", action="store_true",
                       help="disable per-request trace stitching "
                            "(X-Jedule-Trace ids, /jobs/<id>/trace)")

    submit = sub.add_parser("submit",
                            help="submit render jobs to a running "
                                 "'jedule serve' daemon")
    where = submit.add_mutually_exclusive_group(required=True)
    where.add_argument("--url", help="service URL, e.g. http://127.0.0.1:8734")
    where.add_argument("--socket", metavar="PATH",
                       help="service Unix domain socket")
    submit.add_argument("inputs", nargs="*", help="schedule file(s)")
    submit.add_argument("--manifest", metavar="MANIFEST.json",
                        help="submit every job of a batch manifest instead "
                             "of naming inputs")
    submit.add_argument("-o", "--output",
                        help="output image file (single input)")
    submit.add_argument("--outdir", help="output directory (several inputs; "
                                         "needs --format)")
    submit.add_argument("--format", choices=sorted(OUTPUT_FORMATS),
                        help="output format (default: by suffix)")
    submit.add_argument("--width", type=int, default=900)
    submit.add_argument("--height", type=int, default=480)
    submit.add_argument("--client", default=None,
                        help="client id for the server's fair queue "
                             "(default: user@host)")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="max seconds to wait per job (default: 300)")
    submit.add_argument("--trace", metavar="OUT.json",
                        help="fetch the stitched request traces and write "
                             "one combined Chrome trace-event JSON")
    submit.add_argument("--trace-gantt", metavar="OUT.img",
                        help="render the stitched request traces as a "
                             "Gantt chart (the service visualized by "
                             "the tool it serves)")

    top = sub.add_parser("top",
                         help="live terminal dashboard of a running "
                              "'jedule serve' daemon (/statz + /metricz)")
    where_top = top.add_mutually_exclusive_group(required=True)
    where_top.add_argument("--url",
                           help="service URL, e.g. http://127.0.0.1:8734")
    where_top.add_argument("--socket", metavar="PATH",
                           help="service Unix domain socket")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh period in seconds (default: 2)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (no screen refresh)")

    convert = sub.add_parser("convert", help="convert between schedule formats")
    add_input(convert)
    convert.add_argument("output", help="output schedule file")
    convert.add_argument("--output-format", choices=available_formats())

    info = sub.add_parser("info", help="print schedule statistics")
    add_input(info)
    info.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON instead of text")

    validate = sub.add_parser("validate", help="check schedule invariants")
    add_input(validate)
    validate.add_argument("--exclusive", nargs="+", metavar="TYPE", default=[],
                          help="task types that must not timeshare hosts")

    view = sub.add_parser("view", help="interactive terminal viewer")
    add_input(view)
    view.add_argument("--width", type=int, default=100, help="columns of the text view")
    view.add_argument("--ansi", action="store_true", help="use ANSI background colors")

    compare = sub.add_parser("compare",
                             help="render several schedules into one picture")
    compare.add_argument("inputs", nargs="+", help="schedule files")
    compare.add_argument("-o", "--output", required=True)
    compare.add_argument("--format", choices=sorted(OUTPUT_FORMATS))
    compare.add_argument("--width", type=int, default=900)
    compare.add_argument("--panel-height", type=int, default=350)
    compare.add_argument("--independent-axes", action="store_true",
                         help="give each panel its own time frame")
    compare.add_argument("--horizontal", action="store_true",
                         help="place panels side by side instead of stacked")

    profile = sub.add_parser("profile",
                             help="render the busy-host utilization profile")
    add_input(profile)
    profile.add_argument("-o", "--output", required=True)
    profile.add_argument("--format", choices=sorted(OUTPUT_FORMATS))
    profile.add_argument("--width", type=int, default=900)
    profile.add_argument("--height", type=int, default=240)
    profile.add_argument("--types", nargs="+",
                         help="draw one profile per task type")
    profile.add_argument("--title")

    diff = sub.add_parser("diff", help="compare two schedules task by task")
    diff.add_argument("before", help="baseline schedule file")
    diff.add_argument("after", help="schedule file to compare against it")
    diff.add_argument("--fail-on-delay", action="store_true",
                      help="exit nonzero when any task finishes later")

    rep = sub.add_parser("report",
                         help="render a perf/quality dashboard from a "
                              "JSONL run registry")
    rep.add_argument("runlog", help="run registry written by --runlog or "
                                    "the benchmark suites")
    rep.add_argument("-o", "--output", required=True)
    rep.add_argument("--format", choices=sorted(OUTPUT_FORMATS))
    rep.add_argument("--suite", help="only plot records of this suite")
    rep.add_argument("--name", help="only plot records with this name")
    rep.add_argument("--last", type=int, metavar="N",
                     help="only plot the N most recent matching records")
    rep.add_argument("--width", type=int, default=1000)
    rep.add_argument("--panel-height", type=int, default=260)
    rep.add_argument("--title", help="dashboard title")

    from repro.cli.sched import add_sched_parser
    add_sched_parser(sub)
    return parser


def _request_from_args(args: argparse.Namespace, input_path: str,
                       output: Path) -> RenderRequest:
    """Map the ``render`` argparse namespace onto one RenderRequest."""
    return RenderRequest(
        input_path=str(input_path),
        input_format=args.input_format,
        output_path=str(output),
        output_format=args.format,
        width=args.width,
        height=args.height,
        mode=args.mode,
        title=args.title,
        lod=args.lod,
        style_path=args.style,
        cmap_path=args.cmap or None,
        grayscale=args.grayscale,
        auto_colors=args.auto_colors,
        types=args.types,
        clusters=args.clusters,
        window=tuple(args.window) if args.window else None,
        composites=args.composites,
        with_profile=args.with_profile,
        **{k: v for k, v in (("html_threshold", args.html_threshold),
                             ("html_tiers", args.html_tiers))
           if v is not None},
    )


def _render_one(args: argparse.Namespace, input_path: str, output: Path) -> None:
    request = _request_from_args(args, input_path, output)
    schedule = request.load_schedule()
    if getattr(args, "runlog", None):
        from repro.obs.runlog import schedule_metrics

        # metrics of the rendered schedule land in the run record
        # (last input wins for multi-input renders; inputs listed in meta)
        args._schedule_metrics = schedule_metrics(schedule)
    execute_request(request, schedule)
    print(f"wrote {output}")


def _export_observability(args: argparse.Namespace, trace) -> None:
    """Write/print the collected pipeline trace per the --trace* flags."""
    from repro import obs

    if args.trace:
        Path(args.trace).write_text(obs.to_chrome_json(trace, indent=2),
                                    encoding="utf-8")
        print(f"wrote {args.trace} ({len(trace.spans)} spans)")
    if args.trace_gantt:
        from repro.render.api import export_schedule

        gantt = obs.trace_to_schedule(trace)
        export_schedule(gantt, Path(args.trace_gantt),
                        title="repro pipeline trace")
        print(f"wrote {args.trace_gantt} (pipeline Gantt, {len(gantt)} spans)")
    if args.stats:
        print(obs.summary_table(trace), end="")
    if args.runlog:
        record = obs.record_from_trace(
            "cli", "render", trace,
            metrics=getattr(args, "_schedule_metrics", None),
            meta={"inputs": list(args.input),
                  "output": args.output or args.outdir})
        obs.RunLog(args.runlog).append(record)
        print(f"logged run {record.run_id} to {args.runlog}")


def _cmd_render(args: argparse.Namespace) -> int:
    if args.trace or args.stats or args.trace_gantt or args.log_json \
            or args.runlog:
        from contextlib import nullcontext

        from repro import obs

        log_ctx = obs.log_to(args.log_json) if args.log_json else nullcontext()
        with log_ctx, obs.capture() as trace:
            rc = _run_render(args)
        _export_observability(args, trace)
        if args.log_json:
            print(f"wrote {args.log_json} (structured JSONL log)")
        return rc
    return _run_render(args)


def _run_render(args: argparse.Namespace) -> int:
    if args.outdir:
        if not args.format:
            print("error: --outdir needs --format", file=sys.stderr)
            return 2
        outdir = Path(args.outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        for input_path in args.input:
            target = outdir / (Path(input_path).stem + f".{args.format}")
            _render_one(args, input_path, target)
        return 0
    if len(args.input) != 1:
        print("error: several inputs need --outdir", file=sys.stderr)
        return 2
    _render_one(args, args.input[0], Path(args.output))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import batch_record, load_manifest, run_manifest

    manifest = load_manifest(args.manifest)
    kwargs = dict(jobs=args.jobs, use_cache=not args.no_cache,
                  timeout_s=args.timeout, retries=args.retries)
    if args.cache_dir:
        kwargs["cache_dir"] = args.cache_dir

    if args.stats or args.trace or args.runlog:
        from repro import obs

        with obs.capture() as trace:
            report = run_manifest(manifest, **kwargs)
        if args.trace:
            Path(args.trace).write_text(obs.to_chrome_json(trace, indent=2),
                                        encoding="utf-8")
            print(f"wrote {args.trace} ({len(trace.spans)} spans)")
        if args.stats:
            print(obs.summary_table(trace), end="")
        if args.runlog:
            record = batch_record(report, trace=trace,
                                  meta={"manifest": str(args.manifest)})
            obs.RunLog(args.runlog).append(record)
            print(f"logged run {record.run_id} to {args.runlog}")
    else:
        report = run_manifest(manifest, **kwargs)

    print(report.summary())
    if not report.ok:
        print(report.error_table(), end="", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.batch.runner import DEFAULT_CACHE_DIR
    from repro.serve.server import RenderServer

    cache_dir = None if args.no_cache \
        else (args.cache_dir or DEFAULT_CACHE_DIR)
    server = RenderServer(
        host=args.host, port=args.port, socket_path=args.socket,
        workers=args.workers, queue_depth=args.queue_depth,
        cache_dir=cache_dir, runlog=args.runlog,
        job_timeout_s=args.job_timeout,
        trace_jobs=not args.no_trace).start()
    print(f"serving on {server.url} "
          f"({args.workers} warm worker(s), "
          f"cache: {cache_dir or 'off'})", flush=True)

    def _on_drain(signum, frame):
        print("drain requested; finishing queued jobs ...", flush=True)
        server.begin_drain()

    def _on_reload(signum, frame):
        print("reloading worker pool ...", flush=True)
        threading.Thread(target=server.reload, daemon=True).start()

    signal.signal(signal.SIGTERM, _on_drain)
    signal.signal(signal.SIGINT, _on_drain)
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, _on_reload)
    while not server.wait(timeout=0.5):
        pass
    print("drained; all jobs finished", flush=True)
    return 0


def _submit_requests(args: argparse.Namespace) -> list[RenderRequest]:
    if args.manifest:
        from repro.batch.manifest import load_manifest

        return list(load_manifest(args.manifest).requests)
    if not args.inputs:
        raise ReproError("submit needs schedule inputs or --manifest")
    if args.outdir:
        if not args.format:
            raise ReproError("--outdir needs --format")
        outdir = Path(args.outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        return [RenderRequest(
            input_path=str(p),
            output_path=str(outdir / (Path(p).stem + f".{args.format}")),
            output_format=args.format, width=args.width, height=args.height)
            for p in args.inputs]
    if len(args.inputs) != 1 or not args.output:
        raise ReproError("several inputs need --outdir; one input needs -o")
    return [RenderRequest(input_path=str(args.inputs[0]),
                          output_path=str(args.output),
                          output_format=args.format,
                          width=args.width, height=args.height)]


def _cmd_submit(args: argparse.Namespace) -> int:
    import getpass
    import socket as _socket
    import time

    from repro.errors import ServeError
    from repro.serve.client import ServeClient

    client_id = args.client or f"{getpass.getuser()}@{_socket.gethostname()}"
    client = ServeClient(args.url, socket_path=args.socket,
                         client_id=client_id)
    requests = _submit_requests(args)

    submitted = []
    for request in requests:
        while True:  # honor the server's backpressure, don't hammer it
            try:
                submitted.append((request, client.submit(request)))
                break
            except ServeError as exc:
                if exc.code != "queue-full":
                    raise
                time.sleep(getattr(exc, "retry_after", 1))

    failures = 0
    for request, job in submitted:
        doc = client.wait(job["id"], timeout=args.timeout)
        result = doc.get("result") or {}
        tag = result.get("cache", "?")
        target = result.get("output") or "<bytes>"
        if doc["status"] == "done":
            print(f"{request.input_path}: {target} [{tag}]")
        else:
            failures += 1
            print(f"{request.input_path}: FAILED - "
                  f"{result.get('error', 'unknown error')}", file=sys.stderr)
    done = len(submitted) - failures
    print(f"{done}/{len(submitted)} job(s) ok, {failures} failed")
    if args.trace or args.trace_gantt:
        _export_submit_traces(args, client, [job for _, job in submitted])
    return 1 if failures else 0


def _export_submit_traces(args: argparse.Namespace, client,
                          jobs: list[dict]) -> None:
    """Fetch the stitched per-request traces and export them combined."""
    from repro.errors import ServeError
    from repro.obs.export import (
        to_chrome_json,
        trace_from_doc,
        trace_to_schedule,
    )
    from repro.serve.tracing import merge_traces

    traces = []
    for job in jobs:
        try:
            traces.append(trace_from_doc(client.job_trace(job["id"])))
        except (ServeError, ValueError):
            continue  # failed job, pruned job, or tracing disabled
    if not traces:
        print("no stitched traces available (server started with "
              "--no-trace?)", file=sys.stderr)
        return
    merged = merge_traces(traces)
    if args.trace:
        Path(args.trace).write_text(to_chrome_json(merged, indent=2),
                                    encoding="utf-8")
        print(f"wrote {args.trace} ({len(merged.spans)} spans, "
              f"{len(traces)} request(s))")
    if args.trace_gantt:
        from repro.render.api import export_schedule

        gantt = trace_to_schedule(merged, name="serve requests")
        export_schedule(gantt, Path(args.trace_gantt),
                        title="render service request trace")
        print(f"wrote {args.trace_gantt} (service Gantt, "
              f"{len(gantt)} spans)")


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.cli.top import run_top

    return run_top(url=args.url, socket_path=args.socket,
                   interval_s=args.interval, once=args.once)


def _cmd_convert(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.input, args.input_format)
    save_schedule(schedule, args.output, args.output_format)
    print(f"wrote {args.output} ({len(schedule)} tasks)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.input, args.input_format)
    if getattr(args, "json", False):
        import json

        payload = {
            "file": str(args.input),
            "clusters": {c.id: c.num_hosts for c in schedule.clusters},
            "hosts": schedule.num_hosts,
            "tasks": len(schedule),
            "types": list(schedule.task_types()),
            "start_time": schedule.start_time,
            "end_time": schedule.end_time,
            "makespan": schedule.makespan,
            "utilization": utilization(schedule),
            "idle_area": idle_area(schedule),
            "area_per_type": per_type_area(schedule),
            "meta": dict(schedule.meta),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"file:      {args.input}")
    print(f"clusters:  {len(schedule.clusters)}"
          f"  ({', '.join(f'{c.id}:{c.num_hosts}' for c in schedule.clusters)})")
    print(f"hosts:     {schedule.num_hosts}")
    print(f"tasks:     {len(schedule)}")
    print(f"types:     {', '.join(schedule.task_types()) or '-'}")
    print(f"span:      [{schedule.start_time:.6g}, {schedule.end_time:.6g}]")
    print(f"makespan:  {schedule.makespan:.6g}")
    print(f"utilization: {utilization(schedule):.3f}")
    print(f"idle area:   {idle_area(schedule):.6g}")
    for task_type, area in sorted(per_type_area(schedule).items()):
        print(f"  area[{task_type}] = {area:.6g}")
    for k, v in sorted(schedule.meta.items()):
        print(f"meta {k} = {v}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.input, args.input_format)
    violations = validate_schedule(schedule, forbid_overlap_types=args.exclusive)
    if not violations:
        print("OK: no violations")
        return 0
    for v in violations:
        print(str(v))
    print(f"{len(violations)} violation(s)")
    return 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.render.api import format_from_suffix, render_drawing
    from repro.render.compose import compare_schedules

    schedules = [load_schedule(path) for path in args.inputs]
    titles = [Path(p).stem for p in args.inputs]
    drawing = compare_schedules(
        schedules, titles, width=args.width, panel_height=args.panel_height,
        share_time_axis=not args.independent_axes, horizontal=args.horizontal)
    fmt = args.format or format_from_suffix(args.output)
    Path(args.output).write_bytes(render_drawing(drawing, fmt))
    print(f"wrote {args.output} ({len(schedules)} panels)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.render.profile import export_profile

    schedule = load_schedule(args.input, args.input_format)
    export_profile(schedule, args.output, format=args.format,
                   width=args.width, height=args.height, types=args.types,
                   title=args.title)
    print(f"wrote {args.output}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.core.diff import diff_schedules

    before = load_schedule(args.before)
    after = load_schedule(args.after)
    diff = diff_schedules(before, after)
    print(diff.summary())
    for delta in diff.deltas:
        print(f"  {delta}")
    for task_id in diff.added:
        print(f"  {task_id}: added")
    for task_id in diff.removed:
        print(f"  {task_id}: removed")
    if args.fail_on_delay and diff.delayed_tasks():
        print(f"{len(diff.delayed_tasks())} task(s) delayed")
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import report_from_runlog

    out, n = report_from_runlog(
        args.runlog, args.output, suite=args.suite, name=args.name,
        last=args.last, format=args.format, width=args.width,
        panel_height=args.panel_height, title=args.title)
    print(f"wrote {out} (dashboard over {n} run record(s))")
    return 0


def _cmd_view(args: argparse.Namespace) -> int:
    from repro.cli.interactive import InteractiveViewer

    schedule = load_schedule(args.input, args.input_format)
    viewer = InteractiveViewer(schedule, width=args.width, ansi=args.ansi)
    return viewer.run()


def _cmd_sched(args: argparse.Namespace) -> int:
    from repro.cli.sched import cmd_sched

    return cmd_sched(args)


_COMMANDS = {
    "render": _cmd_render,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "top": _cmd_top,
    "convert": _cmd_convert,
    "info": _cmd_info,
    "validate": _cmd_validate,
    "view": _cmd_view,
    "compare": _cmd_compare,
    "profile": _cmd_profile,
    "diff": _cmd_diff,
    "report": _cmd_report,
    "sched": _cmd_sched,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
