"""Command-line mode (paper Section II-D-2).

Subcommands::

    jedule render   schedule.jed -o out.png [--cmap map.xml] [--grayscale] ...
    jedule batch    manifest.json [--jobs N] [--no-cache] ...
    jedule convert  schedule.jed out.json
    jedule info     schedule.jed
    jedule validate schedule.jed
    jedule view     schedule.jed          (terminal interactive mode)

``render`` supports the parameters the paper names: output format, color
map, width/height, scaled/aligned cluster time frames, plus style files,
grayscale conversion, composite-task synthesis, type/cluster filters and a
time window.  ``batch`` mass-produces a whole manifest of figures through
the parallel, content-addressed-cached runner in :mod:`repro.batch`.

Every subcommand loads its inputs through
:func:`repro.io.registry.load_schedule`, so explicit ``--input-format``,
suffix dispatch and content sniffing all behave identically everywhere,
and renders through a single :class:`repro.render.api.RenderRequest`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.stats import idle_area, per_type_area, utilization
from repro.core.timeframe import ViewMode
from repro.core.validate import validate_schedule
from repro.errors import ReproError
from repro.io import load_schedule, save_schedule
from repro.io.registry import available_formats
from repro.render.api import OUTPUT_FORMATS, RenderRequest, execute_request
from repro.render.lod import LOD_MODES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="jedule",
        description="Visualize schedules of parallel applications (Jedule reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input(p: argparse.ArgumentParser) -> None:
        p.add_argument("input", help="schedule file")
        p.add_argument("--input-format", choices=available_formats(),
                       help="force the input format (default: by suffix)")

    render = sub.add_parser("render", help="export schedule pictures")
    render.add_argument("input", nargs="+",
                        help="schedule file(s); several inputs need --outdir")
    render.add_argument("--input-format", choices=available_formats(),
                        help="force the input format (default: by suffix)")
    out = render.add_mutually_exclusive_group(required=True)
    out.add_argument("-o", "--output", help="output image file (single input)")
    out.add_argument("--outdir", help="output directory for batch rendering "
                                      "(one image per input; needs --format)")
    render.add_argument("--format", choices=sorted(OUTPUT_FORMATS),
                        help="output format (default: by suffix)")
    render.add_argument("--with-profile", action="store_true",
                        help="stack the utilization profile under the chart")
    render.add_argument("--cmap", help="color map XML file")
    render.add_argument("--grayscale", action="store_true",
                        help="convert the color map to grayscale")
    render.add_argument("--style", help="style file (key = value lines)")
    render.add_argument("--width", type=int, default=900)
    render.add_argument("--height", type=int, default=480)
    render.add_argument("--mode", choices=[m.value for m in ViewMode],
                        default=ViewMode.ALIGNED.value,
                        help="align cluster time frames or scale them locally")
    render.add_argument("--lod", choices=list(LOD_MODES), default="auto",
                        help="level-of-detail aggregation for large schedules "
                             "(auto: only when tasks outnumber pixels)")
    render.add_argument("--title", help="title drawn above the chart")
    render.add_argument("--composites", action="store_true",
                        help="synthesize composite tasks for overlaps")
    render.add_argument("--auto-colors", metavar="METAKEY", nargs="?", const="",
                        help="auto-assign colors per task type, or per value of a meta key")
    render.add_argument("--types", nargs="+", help="only draw these task types")
    render.add_argument("--clusters", nargs="+", help="only draw these clusters")
    render.add_argument("--window", nargs=2, type=float, metavar=("T0", "T1"),
                        help="restrict to a time window")
    render.add_argument("--trace", metavar="OUT.json",
                        help="write a Chrome trace-event JSON of this run "
                             "(open in chrome://tracing or Perfetto)")
    render.add_argument("--stats", action="store_true",
                        help="print a per-stage timing/counter summary "
                             "after rendering")
    render.add_argument("--trace-gantt", metavar="OUT",
                        help="render this run's own execution trace as a "
                             "Gantt chart (spans as tasks, stages as bands)")
    render.add_argument("--log-json", metavar="OUT.jsonl",
                        help="write structured JSONL logs of this run (one "
                             "event per pipeline span/counter, span ids "
                             "shared with --trace)")
    render.add_argument("--runlog", metavar="RUNLOG.jsonl",
                        help="append a run record (stage timings, counters, "
                             "schedule metrics, env fingerprint) to this "
                             "JSONL run registry")

    batch = sub.add_parser("batch",
                           help="render a whole manifest of figures in "
                                "parallel, with a content-addressed cache")
    batch.add_argument("manifest", help="batch manifest JSON file")
    batch.add_argument("-j", "--jobs", type=int,
                       help="worker processes (default: all CPU cores)")
    batch.add_argument("--cache-dir",
                       help="render cache directory (default: from the "
                            "manifest, else '.jedule-cache' next to it)")
    batch.add_argument("--no-cache", action="store_true",
                       help="render everything, bypassing the cache")
    batch.add_argument("--timeout", type=float, metavar="SECONDS",
                       help="per-batch deadline; unfinished jobs fail")
    batch.add_argument("--retries", type=int, default=1,
                       help="extra attempts for failed jobs (default: 1)")
    batch.add_argument("--stats", action="store_true",
                       help="print a per-stage timing/counter summary")
    batch.add_argument("--trace", metavar="OUT.json",
                       help="write a Chrome trace-event JSON of this run")
    batch.add_argument("--runlog", metavar="RUNLOG.jsonl",
                       help="append a batch run record (jobs, cache "
                            "hits/misses, timings) to this JSONL registry")

    convert = sub.add_parser("convert", help="convert between schedule formats")
    add_input(convert)
    convert.add_argument("output", help="output schedule file")
    convert.add_argument("--output-format", choices=available_formats())

    info = sub.add_parser("info", help="print schedule statistics")
    add_input(info)
    info.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON instead of text")

    validate = sub.add_parser("validate", help="check schedule invariants")
    add_input(validate)
    validate.add_argument("--exclusive", nargs="+", metavar="TYPE", default=[],
                          help="task types that must not timeshare hosts")

    view = sub.add_parser("view", help="interactive terminal viewer")
    add_input(view)
    view.add_argument("--width", type=int, default=100, help="columns of the text view")
    view.add_argument("--ansi", action="store_true", help="use ANSI background colors")

    compare = sub.add_parser("compare",
                             help="render several schedules into one picture")
    compare.add_argument("inputs", nargs="+", help="schedule files")
    compare.add_argument("-o", "--output", required=True)
    compare.add_argument("--format", choices=sorted(OUTPUT_FORMATS))
    compare.add_argument("--width", type=int, default=900)
    compare.add_argument("--panel-height", type=int, default=350)
    compare.add_argument("--independent-axes", action="store_true",
                         help="give each panel its own time frame")
    compare.add_argument("--horizontal", action="store_true",
                         help="place panels side by side instead of stacked")

    profile = sub.add_parser("profile",
                             help="render the busy-host utilization profile")
    add_input(profile)
    profile.add_argument("-o", "--output", required=True)
    profile.add_argument("--format", choices=sorted(OUTPUT_FORMATS))
    profile.add_argument("--width", type=int, default=900)
    profile.add_argument("--height", type=int, default=240)
    profile.add_argument("--types", nargs="+",
                         help="draw one profile per task type")
    profile.add_argument("--title")

    diff = sub.add_parser("diff", help="compare two schedules task by task")
    diff.add_argument("before", help="baseline schedule file")
    diff.add_argument("after", help="schedule file to compare against it")
    diff.add_argument("--fail-on-delay", action="store_true",
                      help="exit nonzero when any task finishes later")

    rep = sub.add_parser("report",
                         help="render a perf/quality dashboard from a "
                              "JSONL run registry")
    rep.add_argument("runlog", help="run registry written by --runlog or "
                                    "the benchmark suites")
    rep.add_argument("-o", "--output", required=True)
    rep.add_argument("--format", choices=sorted(OUTPUT_FORMATS))
    rep.add_argument("--suite", help="only plot records of this suite")
    rep.add_argument("--name", help="only plot records with this name")
    rep.add_argument("--last", type=int, metavar="N",
                     help="only plot the N most recent matching records")
    rep.add_argument("--width", type=int, default=1000)
    rep.add_argument("--panel-height", type=int, default=260)
    rep.add_argument("--title", help="dashboard title")
    return parser


def _request_from_args(args: argparse.Namespace, input_path: str,
                       output: Path) -> RenderRequest:
    """Map the ``render`` argparse namespace onto one RenderRequest."""
    return RenderRequest(
        input_path=str(input_path),
        input_format=args.input_format,
        output_path=str(output),
        output_format=args.format,
        width=args.width,
        height=args.height,
        mode=args.mode,
        title=args.title,
        lod=args.lod,
        style_path=args.style,
        cmap_path=args.cmap or None,
        grayscale=args.grayscale,
        auto_colors=args.auto_colors,
        types=args.types,
        clusters=args.clusters,
        window=tuple(args.window) if args.window else None,
        composites=args.composites,
        with_profile=args.with_profile,
    )


def _render_one(args: argparse.Namespace, input_path: str, output: Path) -> None:
    request = _request_from_args(args, input_path, output)
    schedule = request.load_schedule()
    if getattr(args, "runlog", None):
        from repro.obs.runlog import schedule_metrics

        # metrics of the rendered schedule land in the run record
        # (last input wins for multi-input renders; inputs listed in meta)
        args._schedule_metrics = schedule_metrics(schedule)
    execute_request(request, schedule)
    print(f"wrote {output}")


def _export_observability(args: argparse.Namespace, trace) -> None:
    """Write/print the collected pipeline trace per the --trace* flags."""
    from repro import obs

    if args.trace:
        Path(args.trace).write_text(obs.to_chrome_json(trace, indent=2),
                                    encoding="utf-8")
        print(f"wrote {args.trace} ({len(trace.spans)} spans)")
    if args.trace_gantt:
        from repro.render.api import export_schedule

        gantt = obs.trace_to_schedule(trace)
        export_schedule(gantt, Path(args.trace_gantt),
                        title="repro pipeline trace")
        print(f"wrote {args.trace_gantt} (pipeline Gantt, {len(gantt)} spans)")
    if args.stats:
        print(obs.summary_table(trace), end="")
    if args.runlog:
        record = obs.record_from_trace(
            "cli", "render", trace,
            metrics=getattr(args, "_schedule_metrics", None),
            meta={"inputs": list(args.input),
                  "output": args.output or args.outdir})
        obs.RunLog(args.runlog).append(record)
        print(f"logged run {record.run_id} to {args.runlog}")


def _cmd_render(args: argparse.Namespace) -> int:
    if args.trace or args.stats or args.trace_gantt or args.log_json \
            or args.runlog:
        from contextlib import nullcontext

        from repro import obs

        log_ctx = obs.log_to(args.log_json) if args.log_json else nullcontext()
        with log_ctx, obs.capture() as trace:
            rc = _run_render(args)
        _export_observability(args, trace)
        if args.log_json:
            print(f"wrote {args.log_json} (structured JSONL log)")
        return rc
    return _run_render(args)


def _run_render(args: argparse.Namespace) -> int:
    if args.outdir:
        if not args.format:
            print("error: --outdir needs --format", file=sys.stderr)
            return 2
        outdir = Path(args.outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        for input_path in args.input:
            target = outdir / (Path(input_path).stem + f".{args.format}")
            _render_one(args, input_path, target)
        return 0
    if len(args.input) != 1:
        print("error: several inputs need --outdir", file=sys.stderr)
        return 2
    _render_one(args, args.input[0], Path(args.output))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import batch_record, load_manifest, run_manifest

    manifest = load_manifest(args.manifest)
    kwargs = dict(jobs=args.jobs, use_cache=not args.no_cache,
                  timeout_s=args.timeout, retries=args.retries)
    if args.cache_dir:
        kwargs["cache_dir"] = args.cache_dir

    if args.stats or args.trace or args.runlog:
        from repro import obs

        with obs.capture() as trace:
            report = run_manifest(manifest, **kwargs)
        if args.trace:
            Path(args.trace).write_text(obs.to_chrome_json(trace, indent=2),
                                        encoding="utf-8")
            print(f"wrote {args.trace} ({len(trace.spans)} spans)")
        if args.stats:
            print(obs.summary_table(trace), end="")
        if args.runlog:
            record = batch_record(report, trace=trace,
                                  meta={"manifest": str(args.manifest)})
            obs.RunLog(args.runlog).append(record)
            print(f"logged run {record.run_id} to {args.runlog}")
    else:
        report = run_manifest(manifest, **kwargs)

    print(report.summary())
    if not report.ok:
        print(report.error_table(), end="", file=sys.stderr)
        return 1
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.input, args.input_format)
    save_schedule(schedule, args.output, args.output_format)
    print(f"wrote {args.output} ({len(schedule)} tasks)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.input, args.input_format)
    if getattr(args, "json", False):
        import json

        payload = {
            "file": str(args.input),
            "clusters": {c.id: c.num_hosts for c in schedule.clusters},
            "hosts": schedule.num_hosts,
            "tasks": len(schedule),
            "types": list(schedule.task_types()),
            "start_time": schedule.start_time,
            "end_time": schedule.end_time,
            "makespan": schedule.makespan,
            "utilization": utilization(schedule),
            "idle_area": idle_area(schedule),
            "area_per_type": per_type_area(schedule),
            "meta": dict(schedule.meta),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"file:      {args.input}")
    print(f"clusters:  {len(schedule.clusters)}"
          f"  ({', '.join(f'{c.id}:{c.num_hosts}' for c in schedule.clusters)})")
    print(f"hosts:     {schedule.num_hosts}")
    print(f"tasks:     {len(schedule)}")
    print(f"types:     {', '.join(schedule.task_types()) or '-'}")
    print(f"span:      [{schedule.start_time:.6g}, {schedule.end_time:.6g}]")
    print(f"makespan:  {schedule.makespan:.6g}")
    print(f"utilization: {utilization(schedule):.3f}")
    print(f"idle area:   {idle_area(schedule):.6g}")
    for task_type, area in sorted(per_type_area(schedule).items()):
        print(f"  area[{task_type}] = {area:.6g}")
    for k, v in sorted(schedule.meta.items()):
        print(f"meta {k} = {v}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.input, args.input_format)
    violations = validate_schedule(schedule, forbid_overlap_types=args.exclusive)
    if not violations:
        print("OK: no violations")
        return 0
    for v in violations:
        print(str(v))
    print(f"{len(violations)} violation(s)")
    return 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.render.api import format_from_suffix, render_drawing
    from repro.render.compose import compare_schedules

    schedules = [load_schedule(path) for path in args.inputs]
    titles = [Path(p).stem for p in args.inputs]
    drawing = compare_schedules(
        schedules, titles, width=args.width, panel_height=args.panel_height,
        share_time_axis=not args.independent_axes, horizontal=args.horizontal)
    fmt = args.format or format_from_suffix(args.output)
    Path(args.output).write_bytes(render_drawing(drawing, fmt))
    print(f"wrote {args.output} ({len(schedules)} panels)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.render.profile import export_profile

    schedule = load_schedule(args.input, args.input_format)
    export_profile(schedule, args.output, format=args.format,
                   width=args.width, height=args.height, types=args.types,
                   title=args.title)
    print(f"wrote {args.output}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.core.diff import diff_schedules

    before = load_schedule(args.before)
    after = load_schedule(args.after)
    diff = diff_schedules(before, after)
    print(diff.summary())
    for delta in diff.deltas:
        print(f"  {delta}")
    for task_id in diff.added:
        print(f"  {task_id}: added")
    for task_id in diff.removed:
        print(f"  {task_id}: removed")
    if args.fail_on_delay and diff.delayed_tasks():
        print(f"{len(diff.delayed_tasks())} task(s) delayed")
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import report_from_runlog

    out, n = report_from_runlog(
        args.runlog, args.output, suite=args.suite, name=args.name,
        last=args.last, format=args.format, width=args.width,
        panel_height=args.panel_height, title=args.title)
    print(f"wrote {out} (dashboard over {n} run record(s))")
    return 0


def _cmd_view(args: argparse.Namespace) -> int:
    from repro.cli.interactive import InteractiveViewer

    schedule = load_schedule(args.input, args.input_format)
    viewer = InteractiveViewer(schedule, width=args.width, ansi=args.ansi)
    return viewer.run()


_COMMANDS = {
    "render": _cmd_render,
    "batch": _cmd_batch,
    "convert": _cmd_convert,
    "info": _cmd_info,
    "validate": _cmd_validate,
    "view": _cmd_view,
    "compare": _cmd_compare,
    "profile": _cmd_profile,
    "diff": _cmd_diff,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
