"""``jedule sched`` — run any registered scheduler and render the result.

The subcommand is a thin shell over the scheduler registry
(:mod:`repro.sched.registry`):

* ``jedule sched --list`` prints every registered scheduler with its
  family, problem kind, capabilities and documented options;
* ``jedule sched NAME`` runs ``NAME`` on a workload — an SWF trace
  (``--trace``), a synthetic arrival stream (``--arrivals poisson|bursty``),
  or the canonical demo problem of the scheduler's kind — prints the
  metrics, and optionally renders the schedule to a figure (``-o``).

Scheduler options are free-form ``-O key=value`` pairs; the registry
validates the names, so a typo fails with the scheduler's option list
instead of being silently ignored.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import SchedulerError

__all__ = ["add_sched_parser", "cmd_sched"]


def add_sched_parser(sub) -> None:
    sched = sub.add_parser(
        "sched",
        help="run a scheduler from the registry on a workload")
    sched.add_argument("scheduler", nargs="?",
                       help="registered scheduler name (see --list)")
    sched.add_argument("--list", action="store_true", dest="list_schedulers",
                       help="list registered schedulers and exit")
    source = sched.add_mutually_exclusive_group()
    source.add_argument("--trace", metavar="FILE.swf",
                        help="replay an SWF trace as the arrival stream")
    source.add_argument("--arrivals", choices=("poisson", "bursty"),
                        help="generate a synthetic arrival stream")
    sched.add_argument("--limit", type=int, metavar="N",
                       help="use only the first N jobs of --trace")
    sched.add_argument("--jobs", type=int, default=30, metavar="N",
                       help="number of synthetic jobs (default: 30)")
    sched.add_argument("--seed", type=int, default=7,
                       help="seed for synthetic workloads (default: 7)")
    sched.add_argument("--machines", type=int, default=32, metavar="N",
                       help="platform width for jobs problems (default: 32)")
    sched.add_argument("-O", "--option", action="append", default=[],
                       metavar="KEY=VALUE", dest="options",
                       help="scheduler option (repeatable); values are "
                            "parsed as JSON when possible")
    sched.add_argument("-o", "--output", metavar="FIGURE",
                       help="render the resulting schedule to this file")
    sched.add_argument("--width", type=int, default=900)
    sched.add_argument("--height", type=int, default=480)
    sched.add_argument("--color-by", default="job", metavar="META_KEY",
                       help="meta key for per-category colors "
                            "(default: job; '' = per task type)")
    sched.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")


def _parse_options(pairs: list[str]) -> dict:
    options = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SchedulerError(
                f"bad -O option {pair!r}: expected KEY=VALUE")
        try:
            options[key] = json.loads(value)
        except ValueError:
            options[key] = value
    return options


def _print_listing(out) -> None:
    from repro.sched.registry import available_schedulers
    specs = available_schedulers()
    width = max(len(s.name) for s in specs)
    family = None
    for spec in specs:
        if spec.family != family:
            family = spec.family
            print(f"\n[{family}]  ({spec.problem} problems)", file=out)
        caps = ",".join(sorted(spec.capabilities))
        print(f"  {spec.name:<{width}}  {spec.summary}", file=out)
        print(f"  {'':<{width}}  capabilities: {caps}", file=out)
        for opt, help_text in sorted(spec.options.items()):
            print(f"  {'':<{width}}    -O {opt}=...  {help_text}", file=out)


def _load_problem(spec, args):
    from repro.sched.registry import JobsProblem, canonical_problem
    if spec.problem != "jobs":
        if args.trace or args.arrivals:
            raise SchedulerError(
                f"--trace/--arrivals feed jobs problems, but scheduler "
                f"{spec.name!r} wants a {spec.problem!r} problem",
                scheduler=spec.name)
        return canonical_problem(spec.problem, seed=args.seed)
    if args.trace:
        from repro.workloads.arrivals import swf_job_stream
        jobs = list(swf_job_stream(args.trace, limit=args.limit))
        if not jobs:
            raise SchedulerError(f"trace {args.trace!r} holds no jobs",
                                 scheduler=spec.name)
        return JobsProblem(jobs, machines=args.machines)
    if args.arrivals == "bursty":
        from repro.workloads.arrivals import bursty_arrivals
        return JobsProblem(bursty_arrivals(args.jobs, seed=args.seed),
                           machines=args.machines)
    from repro.workloads.arrivals import poisson_arrivals
    return JobsProblem(poisson_arrivals(args.jobs, seed=args.seed),
                       machines=args.machines)


def cmd_sched(args: argparse.Namespace) -> int:
    if args.list_schedulers:
        _print_listing(sys.stdout)
        return 0
    if not args.scheduler:
        print("error: name a scheduler or pass --list", file=sys.stderr)
        return 2

    from repro.sched.registry import run_scheduler, scheduler_for
    spec = scheduler_for(args.scheduler)
    problem = _load_problem(spec, args)
    result = run_scheduler(spec.name, problem, **_parse_options(args.options))

    figure = None
    if args.output:
        from repro.render.api import export_schedule
        figure = export_schedule(
            result.schedule, Path(args.output),
            width=args.width, height=args.height,
            title=f"{spec.name}: {spec.summary}",
            auto_colors=args.color_by)

    if args.json:
        payload = result.to_json()
        payload["capabilities"] = sorted(spec.capabilities)
        if figure is not None:
            payload["figure"] = str(figure)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"scheduler : {result.scheduler} [{spec.family}]")
    for key in sorted(result.metrics):
        print(f"  {key:<18} {result.metrics[key]:.6g}")
    if result.meta:
        opts = ", ".join(f"{k}={v}" for k, v in sorted(result.meta.items()))
        print(f"  options: {opts}")
    if figure is not None:
        print(f"  figure: {figure}")
    return 0
