"""Command-line and interactive terminal modes."""

from repro.cli.interactive import InteractiveViewer
from repro.cli.main import build_parser, main

__all__ = ["InteractiveViewer", "build_parser", "main"]
