"""Color model and user-definable color maps (paper Section II-C-4).

A color map assigns a foreground (label) and background (fill) color to each
task type, plus *composite rules*: a dedicated color for composite tasks
whose members have a given type combination (Figure 2 of the paper shows a
computation+transfer composite rendered orange).

Colors are plain sRGB triples.  Besides parsing the paper's ``RRGGBB`` hex
notation the module provides perceptual helpers (relative luminance, contrast
choice of label color), a deterministic palette generator for schedules with
many types (e.g. one color per application in the multi-DAG case study), and
a grayscale transform for print style guides, which the paper calls out as a
reason color maps exist.
"""

from __future__ import annotations

import colorsys
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.model import COMPOSITE_TYPE, Schedule, Task
from repro.errors import ColorError

__all__ = [
    "Color",
    "auto_colormap_types",
    "TaskStyle",
    "CompositeRule",
    "ColorMap",
    "default_colormap",
    "grayscale_colormap",
    "auto_colormap",
    "PALETTE",
]


@dataclass(frozen=True, slots=True, order=True)
class Color:
    """An sRGB color with 8-bit channels."""

    r: int
    g: int
    b: int

    def __post_init__(self) -> None:
        for name, v in (("r", self.r), ("g", self.g), ("b", self.b)):
            if not 0 <= v <= 255:
                raise ColorError(f"channel {name}={v} outside 0..255")

    @classmethod
    def from_hex(cls, text: str) -> "Color":
        """Parse ``RRGGBB`` / ``#RRGGBB`` / 3-digit ``RGB`` hex notation."""
        s = text.strip().lstrip("#")
        if len(s) == 3:
            s = "".join(ch * 2 for ch in s)
        if len(s) != 6:
            raise ColorError(f"bad hex color {text!r}")
        try:
            return cls(int(s[0:2], 16), int(s[2:4], 16), int(s[4:6], 16))
        except ValueError:
            raise ColorError(f"bad hex color {text!r}") from None

    @classmethod
    def from_hsv(cls, h: float, s: float, v: float) -> "Color":
        """Build from HSV components in [0, 1]."""
        r, g, b = colorsys.hsv_to_rgb(h % 1.0, min(max(s, 0.0), 1.0), min(max(v, 0.0), 1.0))
        return cls(round(r * 255), round(g * 255), round(b * 255))

    def hex(self) -> str:
        return f"{self.r:02X}{self.g:02X}{self.b:02X}"

    def css(self) -> str:
        return f"#{self.hex()}"

    def rgb01(self) -> tuple[float, float, float]:
        return (self.r / 255.0, self.g / 255.0, self.b / 255.0)

    @property
    def luminance(self) -> float:
        """WCAG relative luminance in [0, 1]."""
        def lin(c: float) -> float:
            return c / 12.92 if c <= 0.04045 else ((c + 0.055) / 1.055) ** 2.4
        r, g, b = self.rgb01()
        return 0.2126 * lin(r) + 0.7152 * lin(g) + 0.0722 * lin(b)

    def contrast_ratio(self, other: "Color") -> float:
        """WCAG contrast ratio in [1, 21]."""
        l1, l2 = sorted((self.luminance, other.luminance), reverse=True)
        return (l1 + 0.05) / (l2 + 0.05)

    def best_label_color(self) -> "Color":
        """Black or white, whichever contrasts more against this fill."""
        black, white = Color(0, 0, 0), Color(255, 255, 255)
        return black if self.contrast_ratio(black) >= self.contrast_ratio(white) else white

    def to_gray(self) -> "Color":
        """Luminance-preserving grayscale version."""
        g = round(self.luminance ** (1 / 2.2) * 255)
        return Color(g, g, g)

    def lightened(self, amount: float) -> "Color":
        """Blend toward white by ``amount`` in [0, 1]."""
        a = min(max(amount, 0.0), 1.0)
        return Color(
            round(self.r + (255 - self.r) * a),
            round(self.g + (255 - self.g) * a),
            round(self.b + (255 - self.b) * a),
        )

    def darkened(self, amount: float) -> "Color":
        """Blend toward black by ``amount`` in [0, 1]."""
        a = min(max(amount, 0.0), 1.0)
        return Color(round(self.r * (1 - a)), round(self.g * (1 - a)), round(self.b * (1 - a)))


#: Categorical palette used when auto-assigning colors to task types.
PALETTE: tuple[Color, ...] = tuple(
    Color.from_hex(h)
    for h in (
        "0000FF", "F10000", "FF6200", "2CA02C", "9467BD", "8C564B",
        "E377C2", "17BECF", "BCBD22", "7F7F7F", "1F77B4", "FFD700",
        "00CED1", "DC143C", "6B8E23", "4B0082",
    )
)


@dataclass(frozen=True, slots=True)
class TaskStyle:
    """Foreground (label) and background (fill) colors of one task type."""

    bg: Color
    fg: Color | None = None

    def label_color(self) -> Color:
        return self.fg if self.fg is not None else self.bg.best_label_color()


@dataclass(frozen=True, slots=True)
class CompositeRule:
    """Color for composites whose member type set equals ``member_types``."""

    member_types: frozenset[str]
    style: TaskStyle

    def __init__(self, member_types: Iterable[str], style: TaskStyle):
        object.__setattr__(self, "member_types", frozenset(member_types))
        object.__setattr__(self, "style", style)


class ColorMap:
    """Mapping from task types (and composite member sets) to styles.

    Also carries the drawing configuration entries of the color-map XML
    (font sizes etc.) as a free-form ``config`` dict, matching Figure 2.
    """

    def __init__(
        self,
        name: str = "default",
        styles: Mapping[str, TaskStyle] | None = None,
        composites: Sequence[CompositeRule] = (),
        config: Mapping[str, str] | None = None,
        fallback: TaskStyle | None = None,
    ):
        self.name = name
        self._styles: dict[str, TaskStyle] = dict(styles or {})
        self._composites: list[CompositeRule] = list(composites)
        self.config: dict[str, str] = dict(config or {})
        self.fallback = fallback or TaskStyle(Color.from_hex("B0B0B0"))
        self._auto_cache: dict[str, TaskStyle] = {}
        self._meta_keys = {n.split(":", 1)[0] for n in self._styles if ":" in n}

    # ------------------------------------------------------------- mutation
    def set_style(self, task_type: str, bg: Color | str, fg: Color | str | None = None) -> None:
        """Assign a style to a task type; hex strings are accepted."""
        bgc = bg if isinstance(bg, Color) else Color.from_hex(bg)
        fgc = fg if (fg is None or isinstance(fg, Color)) else Color.from_hex(fg)
        self._styles[task_type] = TaskStyle(bgc, fgc)
        if ":" in task_type:
            self._meta_keys.add(task_type.split(":", 1)[0])

    def add_composite_rule(
        self, member_types: Iterable[str], bg: Color | str, fg: Color | str | None = None
    ) -> None:
        bgc = bg if isinstance(bg, Color) else Color.from_hex(bg)
        fgc = fg if (fg is None or isinstance(fg, Color)) else Color.from_hex(fg)
        self._composites.append(CompositeRule(member_types, TaskStyle(bgc, fgc)))

    # --------------------------------------------------------------- lookup
    @property
    def task_types(self) -> tuple[str, ...]:
        return tuple(self._styles)

    @property
    def composite_rules(self) -> tuple[CompositeRule, ...]:
        return tuple(self._composites)

    def has_style(self, task_type: str) -> bool:
        return task_type in self._styles

    def style_for_type(self, task_type: str) -> TaskStyle:
        """Explicit style, or a deterministic auto-assigned palette entry."""
        style = self._styles.get(task_type)
        if style is not None:
            return style
        cached = self._auto_cache.get(task_type)
        if cached is None:
            idx = (len(self._styles) + len(self._auto_cache)) % len(PALETTE)
            cached = TaskStyle(PALETTE[idx])
            self._auto_cache[task_type] = cached
        return cached

    def composite_style(self, member_types: Iterable[str]) -> TaskStyle | None:
        """Style of the composite rule matching exactly ``member_types``."""
        wanted = frozenset(member_types)
        for rule in self._composites:
            if rule.member_types == wanted:
                return rule.style
        return None

    def style_for_task(self, task: Task) -> TaskStyle:
        """Resolve a task's style, honoring meta-keyed styles and composites.

        Styles named ``key:value`` match tasks whose meta entry ``key``
        equals ``value`` (how :func:`auto_colormap` with a meta key colors
        per application, user or job) and take precedence over the task's
        type style.  A composite task first tries the rule whose member
        type set equals the composite's ``meta["member_types"]``; with no
        matching rule, an explicit ``composite`` type style; finally a
        darkened blend of the fallback so overlaps remain visually distinct.
        """
        for key in self._meta_keys:
            value = task.meta.get(key)
            if value is not None:
                style = self._styles.get(f"{key}:{value}")
                if style is not None:
                    return style
        if task.type == COMPOSITE_TYPE:
            members = task.meta.get("member_types", "")
            if members:
                style = self.composite_style(members.split(","))
                if style is not None:
                    return style
            if COMPOSITE_TYPE in self._styles:
                return self._styles[COMPOSITE_TYPE]
            return TaskStyle(self.fallback.bg.darkened(0.35))
        return self.style_for_type(task.type)

    # ------------------------------------------------------------ transforms
    def to_grayscale(self, name: str | None = None) -> "ColorMap":
        """A grayscale variant of this color map (print style guides)."""
        styles = {
            t: TaskStyle(s.bg.to_gray(), s.fg.to_gray() if s.fg else None)
            for t, s in self._styles.items()
        }
        composites = [
            CompositeRule(r.member_types,
                          TaskStyle(r.style.bg.to_gray(),
                                    r.style.fg.to_gray() if r.style.fg else None))
            for r in self._composites
        ]
        return ColorMap(name or f"{self.name}-gray", styles, composites, self.config,
                        TaskStyle(self.fallback.bg.to_gray()))

    def merged_with(self, other: "ColorMap") -> "ColorMap":
        """New map where ``other``'s entries override this map's."""
        styles = dict(self._styles)
        styles.update(other._styles)
        config = dict(self.config)
        config.update(other.config)
        return ColorMap(other.name, styles,
                        list(self._composites) + list(other._composites), config,
                        other.fallback)


def default_colormap() -> ColorMap:
    """The paper's standard map: blue computation, red transfer, orange composite."""
    cmap = ColorMap("standard_map", config={
        "min_font_size_label": "11",
        "font_size_label": "13",
        "font_size_axes": "12",
    })
    cmap.set_style("computation", "0000FF", "FFFFFF")
    cmap.set_style("transfer", "F10000", "000000")
    cmap.set_style("communication", "F10000", "000000")
    cmap.set_style("idle", "FFFFFF", "000000")
    cmap.set_style("wait", "F10000", "000000")
    cmap.add_composite_rule(["computation", "transfer"], "FF6200", "FFFFFF")
    cmap.add_composite_rule(["communication", "computation"], "FF6200", "FFFFFF")
    return cmap


def grayscale_colormap() -> ColorMap:
    """Grayscale variant of the default map."""
    return default_colormap().to_grayscale("grayscale_map")


def auto_colormap_types(
    categories: Sequence[str],
    *,
    name: str = "auto",
    saturation: float = 0.65,
    value: float = 0.85,
) -> ColorMap:
    """Deterministically color an explicit category list (golden-angle hues)."""
    cmap = ColorMap(name)
    golden = 0.6180339887498949
    for i, cat in enumerate(categories):
        cmap.set_style(cat, Color.from_hsv(i * golden, saturation, value))
    return cmap


def auto_colormap(
    schedule: Schedule,
    *,
    key: str | None = None,
    name: str = "auto",
    saturation: float = 0.65,
    value: float = 0.85,
) -> ColorMap:
    """Deterministically color every distinct type (or meta value) of a schedule.

    With ``key=None`` one color is assigned per task *type*; with a meta key
    (e.g. ``"app"`` or ``"user"``) one color per distinct meta value — this is
    how the multi-DAG case study gives each application its own color and how
    Figure 13 highlights a single user.  Hues are spread around the color
    wheel with the golden-angle increment so nearby indices stay distinct.
    """
    if key is None:
        categories = list(schedule.task_types())
    else:
        seen: dict[str, None] = {}
        for t in schedule:
            seen.setdefault(t.meta.get(key, ""), None)
        categories = list(seen)
    cmap = ColorMap(name)
    golden = 0.6180339887498949
    for i, cat in enumerate(categories):
        cmap.set_style(cat if key is None else f"{key}:{cat}",
                       Color.from_hsv(i * golden, saturation, value))
    return cmap
