"""Core schedule data model.

This module implements the data model described in Section II of the paper:

* a :class:`Schedule` ``S`` consists of ``v`` tasks;
* each :class:`Task` ``v_i`` has a start time ``t_s``, a finish time ``t_f``,
  a unique identifier and a free-form *type* (used for grouping/coloring);
* a task allocates ``p_v <= p`` resources via one or more
  :class:`Configuration` records (a task needs multiple rectangles when its
  resources are not contiguous, or when it spans clusters);
* resources are partitioned into :class:`Cluster` objects ``C_j`` with
  ``union(C_j) == P`` and ``C_i ∩ C_j == ∅``;
* a schedule carries *meta information* as key/value pairs.

Host indices are **cluster-local**: configuration host ranges index into the
hosts of their cluster, ``0 .. cluster.num_hosts - 1``, matching the XML
format of Figure 1 of the paper where the host list ``start=0 nb=8`` refers to
processors 0..7 *of cluster 0*.  Global (flattened) indices are available via
:meth:`Schedule.global_host_index`.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import ScheduleError

__all__ = [
    "HostRange",
    "Configuration",
    "Task",
    "Cluster",
    "Schedule",
    "COMPOSITE_TYPE",
    "merge_host_ranges",
    "hosts_to_ranges",
]

#: Task type assigned to synthesized composite (overlap) tasks.
COMPOSITE_TYPE = "composite"


@dataclass(frozen=True, slots=True)
class HostRange:
    """A contiguous run of hosts ``start, start+1, ..., start+nb-1``.

    Mirrors the ``<hosts start=".." nb=".."/>`` element of the Jedule XML
    input format (paper Figure 1).
    """

    start: int
    nb: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ScheduleError(f"host range start must be >= 0, got {self.start}")
        if self.nb <= 0:
            raise ScheduleError(f"host range length must be >= 1, got {self.nb}")

    @property
    def stop(self) -> int:
        """Exclusive end index of the range."""
        return self.start + self.nb

    def hosts(self) -> range:
        """The hosts covered by this range, as a ``range`` object."""
        return range(self.start, self.stop)

    def __contains__(self, host: object) -> bool:
        return isinstance(host, int) and self.start <= host < self.stop

    def overlaps(self, other: "HostRange") -> bool:
        """True when the two ranges share at least one host."""
        return self.start < other.stop and other.start < self.stop


def merge_host_ranges(ranges: Iterable[HostRange]) -> tuple[HostRange, ...]:
    """Normalize ranges: sort, merge adjacent/overlapping runs.

    The result covers exactly the union of the input hosts using the minimal
    number of maximal contiguous runs.
    """
    items = sorted(ranges, key=lambda r: (r.start, r.stop))
    merged: list[HostRange] = []
    for r in items:
        if merged and r.start <= merged[-1].stop:
            last = merged[-1]
            if r.stop > last.stop:
                merged[-1] = HostRange(last.start, r.stop - last.start)
        else:
            merged.append(r)
    return tuple(merged)


def hosts_to_ranges(hosts: Iterable[int]) -> tuple[HostRange, ...]:
    """Compress an arbitrary host set into maximal contiguous ranges."""
    ordered = sorted(set(hosts))
    if not ordered:
        return ()
    runs: list[HostRange] = []
    run_start = prev = ordered[0]
    for h in ordered[1:]:
        if h == prev + 1:
            prev = h
            continue
        runs.append(HostRange(run_start, prev - run_start + 1))
        run_start = prev = h
    runs.append(HostRange(run_start, prev - run_start + 1))
    return tuple(runs)


@dataclass(frozen=True, slots=True)
class Configuration:
    """One resource binding of a task: a set of hosts inside one cluster.

    A task has one configuration per cluster it touches (and possibly several
    for non-contiguous allocations inside one cluster, although a single
    configuration already supports multiple host ranges).
    """

    cluster_id: str
    host_ranges: tuple[HostRange, ...]

    def __init__(self, cluster_id: str | int, host_ranges: Iterable[HostRange | tuple[int, int]]):
        normalized = tuple(
            hr if isinstance(hr, HostRange) else HostRange(int(hr[0]), int(hr[1]))
            for hr in host_ranges
        )
        if not normalized:
            raise ScheduleError("a configuration needs at least one host range")
        object.__setattr__(self, "cluster_id", str(cluster_id))
        object.__setattr__(self, "host_ranges", merge_host_ranges(normalized))

    @classmethod
    def from_hosts(cls, cluster_id: str | int, hosts: Iterable[int]) -> "Configuration":
        """Build a configuration from an explicit (possibly scattered) host set."""
        ranges = hosts_to_ranges(hosts)
        if not ranges:
            raise ScheduleError("a configuration needs at least one host")
        return cls(cluster_id, ranges)

    @property
    def num_hosts(self) -> int:
        """Number of hosts bound by this configuration."""
        return sum(r.nb for r in self.host_ranges)

    def hosts(self) -> tuple[int, ...]:
        """All bound host indices, ascending."""
        return tuple(itertools.chain.from_iterable(r.hosts() for r in self.host_ranges))

    def host_set(self) -> frozenset[int]:
        return frozenset(self.hosts())

    @property
    def is_contiguous(self) -> bool:
        """True when the allocation forms one contiguous run of hosts."""
        return len(self.host_ranges) == 1


@dataclass(frozen=True, slots=True)
class Task:
    """A scheduled task: identifier, type, time interval, resource bindings.

    ``start_time``/``end_time`` use arbitrary user units (typically seconds).
    ``meta`` holds per-task key/value annotations shown by the interactive
    inspector (e.g. the user id of a job, an application name...).
    """

    id: str
    type: str
    start_time: float
    end_time: float
    configurations: tuple[Configuration, ...]
    meta: Mapping[str, str] = field(default_factory=dict)

    def __init__(
        self,
        id: str | int,
        type: str,
        start_time: float,
        end_time: float,
        configurations: Iterable[Configuration],
        meta: Mapping[str, str] | None = None,
    ):
        start_time = float(start_time)
        end_time = float(end_time)
        if not (math.isfinite(start_time) and math.isfinite(end_time)):
            raise ScheduleError(f"task {id!r}: non-finite times [{start_time}, {end_time}]")
        if end_time < start_time:
            raise ScheduleError(
                f"task {id!r}: end_time {end_time} precedes start_time {start_time}"
            )
        configs = tuple(configurations)
        if not configs:
            raise ScheduleError(f"task {id!r} needs at least one configuration")
        seen_clusters = [c.cluster_id for c in configs]
        if len(seen_clusters) != len(set(seen_clusters)):
            raise ScheduleError(f"task {id!r}: duplicate configuration for one cluster")
        object.__setattr__(self, "id", str(id))
        object.__setattr__(self, "type", str(type))
        object.__setattr__(self, "start_time", start_time)
        object.__setattr__(self, "end_time", end_time)
        object.__setattr__(self, "configurations", configs)
        object.__setattr__(self, "meta", dict(meta or {}))

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def num_hosts(self) -> int:
        """Total hosts bound across all configurations (``p_v`` in the paper)."""
        return sum(c.num_hosts for c in self.configurations)

    @property
    def cluster_ids(self) -> tuple[str, ...]:
        return tuple(c.cluster_id for c in self.configurations)

    def configuration_for(self, cluster_id: str | int) -> Configuration | None:
        """The configuration binding hosts of ``cluster_id``, or ``None``."""
        wanted = str(cluster_id)
        for c in self.configurations:
            if c.cluster_id == wanted:
                return c
        return None

    def hosts_in(self, cluster_id: str | int) -> tuple[int, ...]:
        """Hosts this task binds in ``cluster_id`` (empty when it doesn't)."""
        conf = self.configuration_for(cluster_id)
        return conf.hosts() if conf is not None else ()

    def overlaps_time(self, other: "Task") -> bool:
        """True when the two tasks' half-open time intervals intersect."""
        return self.start_time < other.end_time and other.start_time < self.end_time

    def shares_resources(self, other: "Task") -> bool:
        """True when the two tasks bind at least one common host."""
        for c in self.configurations:
            oc = other.configuration_for(c.cluster_id)
            if oc is None:
                continue
            for r in c.host_ranges:
                for orr in oc.host_ranges:
                    if r.overlaps(orr):
                        return True
        return False

    def with_meta(self, **meta: str) -> "Task":
        """Copy of this task with additional meta entries."""
        merged = dict(self.meta)
        merged.update({k: str(v) for k, v in meta.items()})
        return Task(self.id, self.type, self.start_time, self.end_time,
                    self.configurations, merged)

    def shifted(self, delta: float) -> "Task":
        """Copy of this task translated in time by ``delta``."""
        return Task(self.id, self.type, self.start_time + delta, self.end_time + delta,
                    self.configurations, self.meta)


@dataclass(frozen=True, slots=True)
class Cluster:
    """A named group of ``num_hosts`` resources.

    A cluster may model a commodity cluster, a multicore node, or any logical
    grouping; the union of clusters is the full resource set ``P``.
    """

    id: str
    num_hosts: int
    name: str = ""

    def __init__(self, id: str | int, num_hosts: int, name: str | None = None):
        num_hosts = int(num_hosts)
        if num_hosts <= 0:
            raise ScheduleError(f"cluster {id!r} must have >= 1 host, got {num_hosts}")
        object.__setattr__(self, "id", str(id))
        object.__setattr__(self, "num_hosts", num_hosts)
        object.__setattr__(self, "name", name if name is not None else f"cluster {id}")

    def hosts(self) -> range:
        return range(self.num_hosts)


class Schedule:
    """A complete schedule: ordered clusters, tasks, and meta information.

    Mutable builder-style container; rendering, statistics and IO all consume
    it read-only.  Task identifiers must be unique.
    """

    def __init__(
        self,
        clusters: Iterable[Cluster] = (),
        tasks: Iterable[Task] = (),
        meta: Mapping[str, str] | None = None,
    ):
        self._clusters: dict[str, Cluster] = {}
        self._tasks: dict[str, Task] = {}
        self.meta: dict[str, str] = dict(meta or {})
        for c in clusters:
            self.add_cluster(c)
        for t in tasks:
            self.add_task(t)

    # ------------------------------------------------------------------ build
    def add_cluster(self, cluster: Cluster) -> Cluster:
        """Register a cluster; its id must be new."""
        if cluster.id in self._clusters:
            raise ScheduleError(f"duplicate cluster id {cluster.id!r}")
        self._clusters[cluster.id] = cluster
        return cluster

    def new_cluster(self, id: str | int, num_hosts: int, name: str | None = None) -> Cluster:
        """Create and register a cluster in one step."""
        return self.add_cluster(Cluster(id, num_hosts, name))

    def add_task(self, task: Task) -> Task:
        """Register a task; its id must be new and its clusters known."""
        if task.id in self._tasks:
            raise ScheduleError(f"duplicate task id {task.id!r}")
        for conf in task.configurations:
            cluster = self._clusters.get(conf.cluster_id)
            if cluster is None:
                raise ScheduleError(
                    f"task {task.id!r} references unknown cluster {conf.cluster_id!r}"
                )
            top = conf.host_ranges[-1].stop
            if top > cluster.num_hosts:
                raise ScheduleError(
                    f"task {task.id!r} binds host {top - 1} but cluster "
                    f"{conf.cluster_id!r} only has hosts 0..{cluster.num_hosts - 1}"
                )
        self._tasks[task.id] = task
        return task

    def new_task(
        self,
        id: str | int,
        type: str,
        start_time: float,
        end_time: float,
        *,
        cluster: str | int = "0",
        hosts: Iterable[int] | None = None,
        host_start: int | None = None,
        host_nb: int | None = None,
        configurations: Iterable[Configuration] | None = None,
        meta: Mapping[str, str] | None = None,
    ) -> Task:
        """Convenience task constructor covering the common single-cluster case.

        Exactly one of ``hosts``, ``(host_start, host_nb)`` or
        ``configurations`` selects the resource binding.
        """
        if configurations is not None:
            confs: tuple[Configuration, ...] = tuple(configurations)
        elif hosts is not None:
            confs = (Configuration.from_hosts(cluster, hosts),)
        elif host_start is not None and host_nb is not None:
            confs = (Configuration(cluster, [(host_start, host_nb)]),)
        else:
            raise ScheduleError(
                "new_task needs hosts=, host_start=/host_nb=, or configurations="
            )
        return self.add_task(Task(id, type, start_time, end_time, confs, meta))

    def remove_task(self, task_id: str) -> Task:
        """Remove and return a task by id."""
        try:
            return self._tasks.pop(str(task_id))
        except KeyError:
            raise ScheduleError(f"no task with id {task_id!r}") from None

    # ------------------------------------------------------------------ access
    @property
    def clusters(self) -> tuple[Cluster, ...]:
        """Clusters in registration order."""
        return tuple(self._clusters.values())

    @property
    def tasks(self) -> tuple[Task, ...]:
        """Tasks in registration order."""
        return tuple(self._tasks.values())

    def cluster(self, cluster_id: str | int) -> Cluster:
        try:
            return self._clusters[str(cluster_id)]
        except KeyError:
            raise ScheduleError(f"no cluster with id {cluster_id!r}") from None

    def has_cluster(self, cluster_id: str | int) -> bool:
        return str(cluster_id) in self._clusters

    def task(self, task_id: str | int) -> Task:
        try:
            return self._tasks[str(task_id)]
        except KeyError:
            raise ScheduleError(f"no task with id {task_id!r}") from None

    def has_task(self, task_id: str | int) -> bool:
        return str(task_id) in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __contains__(self, task_id: object) -> bool:
        return isinstance(task_id, (str, int)) and str(task_id) in self._tasks

    # ------------------------------------------------------------- derived
    @property
    def num_hosts(self) -> int:
        """Total resources ``|P|`` across all clusters."""
        return sum(c.num_hosts for c in self._clusters.values())

    def tasks_in_cluster(self, cluster_id: str | int) -> tuple[Task, ...]:
        """Tasks with at least one configuration in ``cluster_id``."""
        wanted = str(cluster_id)
        return tuple(t for t in self._tasks.values()
                     if any(c.cluster_id == wanted for c in t.configurations))

    def tasks_of_type(self, type: str) -> tuple[Task, ...]:
        return tuple(t for t in self._tasks.values() if t.type == type)

    def task_types(self) -> tuple[str, ...]:
        """Distinct task types in first-appearance order."""
        seen: dict[str, None] = {}
        for t in self._tasks.values():
            seen.setdefault(t.type, None)
        return tuple(seen)

    @property
    def start_time(self) -> float:
        """Global minimum task start time (0.0 for an empty schedule)."""
        return min((t.start_time for t in self._tasks.values()), default=0.0)

    @property
    def end_time(self) -> float:
        """Global maximum task end time (0.0 for an empty schedule)."""
        return max((t.end_time for t in self._tasks.values()), default=0.0)

    @property
    def makespan(self) -> float:
        """``end_time - start_time`` of the whole schedule."""
        return self.end_time - self.start_time

    def cluster_offset(self, cluster_id: str | int) -> int:
        """Flattened index of the first host of ``cluster_id``.

        Clusters are stacked in registration order, which is also the
        top-to-bottom rendering order.
        """
        wanted = str(cluster_id)
        off = 0
        for c in self._clusters.values():
            if c.id == wanted:
                return off
            off += c.num_hosts
        raise ScheduleError(f"no cluster with id {cluster_id!r}")

    def global_host_index(self, cluster_id: str | int, host: int) -> int:
        """Map a cluster-local host index to a global (flattened) index."""
        cluster = self.cluster(cluster_id)
        if not 0 <= host < cluster.num_hosts:
            raise ScheduleError(
                f"host {host} out of range for cluster {cluster_id!r} "
                f"(0..{cluster.num_hosts - 1})"
            )
        return self.cluster_offset(cluster_id) + host

    def filtered(
        self,
        *,
        types: Iterable[str] | None = None,
        clusters: Iterable[str | int] | None = None,
        time_window: tuple[float, float] | None = None,
        predicate=None,
    ) -> "Schedule":
        """A new schedule keeping tasks matching all given criteria.

        ``time_window`` keeps tasks whose interval intersects ``[t0, t1)``.
        All clusters are preserved (so layouts stay comparable); only tasks
        are filtered.  ``predicate`` is an optional ``Task -> bool``.
        """
        type_set = set(types) if types is not None else None
        cluster_set = {str(c) for c in clusters} if clusters is not None else None
        kept = []
        for t in self._tasks.values():
            if type_set is not None and t.type not in type_set:
                continue
            if cluster_set is not None and not (set(t.cluster_ids) & cluster_set):
                continue
            if time_window is not None:
                t0, t1 = time_window
                if not (t.start_time < t1 and t0 < t.end_time):
                    continue
            if predicate is not None and not predicate(t):
                continue
            kept.append(t)
        return Schedule(self.clusters, kept, self.meta)

    def copy(self) -> "Schedule":
        """Shallow copy (tasks/clusters are immutable, so this is safe)."""
        return Schedule(self.clusters, self.tasks, self.meta)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Schedule({len(self._clusters)} clusters, {len(self._tasks)} tasks, "
            f"makespan={self.makespan:.6g})"
        )
