"""Composite task construction (paper Section II-C-3).

A parallel system may execute tasks concurrently on the same resources.  For
each resource shared by several tasks during some interval, Jedule creates a
*composite task*: its identifier is the concatenation of the member task ids
and its type is ``"composite"`` — rendered in its own color (e.g. the orange
"computation over communication" regions of Figure 3).

The algorithm here is a per-host sweep line:

1. bucket task intervals by (cluster, host);
2. per host, sweep the sorted start/end events and emit, for every maximal
   interval during which two or more tasks hold the host, one *overlap
   fragment* carrying the member id set;
3. group fragments with identical (member set, interval) across hosts and
   compress their host sets back into ranges, yielding one composite task
   (possibly with multiple rectangles) per distinct overlap.

The decomposition is exact: composite fragments cover exactly the host-time
region where >= 2 member tasks coexist, and non-overlapping parts of the
original tasks remain visible underneath (composites are *added* to the
schedule, drawn on top).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from repro.core.model import (
    COMPOSITE_TYPE,
    Configuration,
    Schedule,
    Task,
    hosts_to_ranges,
)

__all__ = ["composite_id", "find_overlaps", "build_composite_tasks", "with_composites"]


def composite_id(member_ids: Sequence[str]) -> str:
    """Identifier of a composite task: the sorted member ids joined by '+'."""
    return "+".join(sorted(member_ids))


def find_overlaps(
    tasks: Iterable[Task],
) -> dict[tuple[frozenset[str], float, float], set[tuple[str, int]]]:
    """Locate all overlap fragments.

    Returns a mapping from ``(member_id_set, t0, t1)`` to the set of
    ``(cluster_id, host)`` resources on which exactly that member set
    coexists during exactly ``[t0, t1)``.
    """
    by_host: dict[tuple[str, int], list[Task]] = {}
    for t in tasks:
        if t.duration <= 0:
            continue
        for conf in t.configurations:
            for r in conf.host_ranges:
                for h in r.hosts():
                    by_host.setdefault((conf.cluster_id, h), []).append(t)

    fragments: dict[tuple[frozenset[str], float, float], set[tuple[str, int]]] = {}
    for key, holders in by_host.items():
        if len(holders) < 2:
            continue
        events: list[tuple[float, int, str]] = []
        for t in holders:
            events.append((t.start_time, +1, t.id))
            events.append((t.end_time, -1, t.id))
        # Process ends before starts at equal times so touching intervals
        # ([a,b) then [b,c)) do not count as overlapping.
        events.sort(key=lambda e: (e[0], e[1]))
        active: set[str] = set()
        seg_start = 0.0
        for time, kind, task_id in events:
            if len(active) >= 2 and time > seg_start:
                frag = (frozenset(active), seg_start, time)
                fragments.setdefault(frag, set()).add(key)
            if kind > 0:
                active.add(task_id)
            else:
                active.discard(task_id)
            seg_start = time
    return fragments


def build_composite_tasks(tasks: Iterable[Task]) -> list[Task]:
    """Synthesize one composite task per distinct overlap fragment.

    Composite ids get a ``#k`` suffix when the same member set overlaps in
    several disjoint time windows, keeping ids unique.
    """
    fragments = find_overlaps(tasks)
    # Deterministic order: by start time, then id.
    ordered = sorted(fragments.items(), key=lambda kv: (kv[0][1], kv[0][2], composite_id(kv[0][0])))
    counts: dict[str, int] = {}
    composites: list[Task] = []
    for (members, t0, t1), resources in ordered:
        base = composite_id(tuple(members))
        n = counts.get(base, 0)
        counts[base] = n + 1
        task_id = base if n == 0 else f"{base}#{n}"
        confs = []
        by_cluster: dict[str, list[int]] = {}
        for cluster_id, host in resources:
            by_cluster.setdefault(cluster_id, []).append(host)
        for cluster_id in sorted(by_cluster):
            confs.append(Configuration(cluster_id, hosts_to_ranges(by_cluster[cluster_id])))
        composites.append(Task(
            task_id, COMPOSITE_TYPE, t0, t1, confs,
            meta={"members": ",".join(sorted(members))},
        ))
    return composites


def with_composites(schedule: Schedule) -> Schedule:
    """A copy of ``schedule`` with composite tasks appended.

    Original tasks are kept; renderers draw composites on top because they
    come later in task order.  Member types of each overlap are recorded in
    the composite's ``meta["member_types"]`` so color maps can select the
    right composite rule (paper Figure 2 defines composite colors per member
    type combination).
    """
    out = Schedule(schedule.clusters, schedule.tasks, schedule.meta)
    for comp in build_composite_tasks(schedule.tasks):
        member_ids = comp.meta["members"].split(",")
        member_types = sorted({schedule.task(mid).type for mid in member_ids})
        out.add_task(comp.with_meta(member_types=",".join(member_types)))
    return out
