"""Per-cluster time frames: scaled vs. aligned views (paper Section II-C-3).

Each cluster schedule ``S_Cj`` is self-contained, starting at ``t_s^Cj`` (the
minimal start time of its tasks) and ending at ``t_f^Cj`` (their maximal
finish time).  Jedule offers two view modes when clusters are displayed side
by side:

* **scaled**: every cluster uses its local ``[t_s^Cj, t_f^Cj]`` frame, so
  each cluster's schedule fills its full width;
* **aligned**: all clusters share the global ``[min_j t_s^Cj, max_j t_f^Cj]``
  frame, so the overall utilization across resources is directly visible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.model import Schedule

__all__ = ["ViewMode", "TimeFrame", "cluster_frame", "global_frame", "frames_for"]


class ViewMode(enum.Enum):
    """How per-cluster time axes are established when rendering."""

    SCALED = "scaled"
    ALIGNED = "aligned"

    @classmethod
    def parse(cls, text: str) -> "ViewMode":
        try:
            return cls(text.strip().lower())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown view mode {text!r} (expected one of: {valid})") from None


@dataclass(frozen=True, slots=True)
class TimeFrame:
    """A closed time interval used as a drawing frame."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"empty time frame [{self.start}, {self.end}]")

    @property
    def span(self) -> float:
        return self.end - self.start

    def contains(self, t: float) -> bool:
        return self.start <= t <= self.end

    def clamp(self, t: float) -> float:
        return min(max(t, self.start), self.end)

    def fraction(self, t: float) -> float:
        """Map time ``t`` to [0, 1] within the frame (0 when degenerate)."""
        if self.span == 0:
            return 0.0
        return (t - self.start) / self.span

    def at_fraction(self, f: float) -> float:
        """Inverse of :meth:`fraction`."""
        return self.start + f * self.span

    def union(self, other: "TimeFrame") -> "TimeFrame":
        return TimeFrame(min(self.start, other.start), max(self.end, other.end))

    def intersect(self, other: "TimeFrame") -> "TimeFrame | None":
        lo, hi = max(self.start, other.start), min(self.end, other.end)
        return TimeFrame(lo, hi) if lo <= hi else None


def cluster_frame(schedule: Schedule, cluster_id: str | int) -> TimeFrame:
    """Local frame ``[t_s^Cj, t_f^Cj]`` of one cluster.

    A cluster with no task gets the degenerate frame ``[0, 0]``.
    """
    tasks = schedule.tasks_in_cluster(cluster_id)
    if not tasks:
        return TimeFrame(0.0, 0.0)
    return TimeFrame(min(t.start_time for t in tasks), max(t.end_time for t in tasks))


def global_frame(schedule: Schedule) -> TimeFrame:
    """Global frame across all tasks of the schedule."""
    return TimeFrame(schedule.start_time, schedule.end_time)


def frames_for(schedule: Schedule, mode: ViewMode) -> dict[str, TimeFrame]:
    """Per-cluster frames under the given view mode, keyed by cluster id."""
    if mode is ViewMode.ALIGNED:
        g = global_frame(schedule)
        return {c.id: g for c in schedule.clusters}
    return {c.id: cluster_frame(schedule, c.id) for c in schedule.clusters}
