"""Schedule statistics: makespan, utilization, idle time, profiles.

The case studies of the paper read quantities like "large holes of idle CPU
time" (Figure 4), "reduction of the total idle time" by backfilling
(Section IV-B), or "periods with low utilization with only 2-4 processors
actually running" (Section VI-B) off the pictures.  This module computes the
same quantities numerically so benches and tests can assert them.

All functions treat task intervals as half-open ``[start, end)`` and assume
one unit of work per (host, second) a task holds a host.
"""

from __future__ import annotations

import bisect
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.model import COMPOSITE_TYPE, Schedule, Task

__all__ = [
    "UtilizationProfile",
    "total_busy_area",
    "utilization",
    "idle_area",
    "utilization_profile",
    "busy_hosts_at",
    "per_type_area",
    "per_host_busy_time",
    "low_utilization_windows",
    "area_lower_bound",
]


def _real_tasks(schedule: Schedule) -> list[Task]:
    """Tasks excluding synthesized composites (which double-count work)."""
    return [t for t in schedule if t.type != COMPOSITE_TYPE]


def total_busy_area(schedule: Schedule, *, types: Iterable[str] | None = None) -> float:
    """Sum of ``duration * num_hosts`` over (optionally type-filtered) tasks."""
    wanted = set(types) if types is not None else None
    area = 0.0
    for t in _real_tasks(schedule):
        if wanted is not None and t.type not in wanted:
            continue
        area += t.duration * t.num_hosts
    return area


def utilization(schedule: Schedule, *, types: Iterable[str] | None = None) -> float:
    """Busy area divided by total available area ``|P| * makespan``.

    Overlapping tasks on a shared host count each interval once per holding
    task (the quantity can exceed 1 for heavily timeshared schedules; the
    space-shared schedules of the case studies stay <= 1).

    Degenerate inputs are well-defined rather than a ``ZeroDivisionError``:
    an empty schedule, a schedule with no hosts, or a zero-span timeframe
    (every task at the same instant) all yield ``0.0``.
    """
    span = schedule.makespan
    hosts = schedule.num_hosts
    if span <= 0 or hosts == 0:
        return 0.0
    return total_busy_area(schedule, types=types) / (span * hosts)


def idle_area(schedule: Schedule, *, busy_types: Iterable[str] | None = None) -> float:
    """Total idle host-seconds: available area minus busy area.

    ``0.0`` for an empty schedule or a zero-span timeframe (no time in
    which a host could have idled).
    """
    span = schedule.makespan
    hosts = schedule.num_hosts
    if span <= 0 or hosts == 0:
        return 0.0
    return span * hosts - total_busy_area(schedule, types=busy_types)


@dataclass(frozen=True, slots=True)
class UtilizationProfile:
    """Step function: number of busy hosts over time.

    ``times[i]`` is the instant where the count changes to ``counts[i]``;
    the profile is right-continuous and ``counts[-1]`` is always 0.
    """

    times: tuple[float, ...]
    counts: tuple[int, ...]

    def value_at(self, t: float) -> int:
        """Busy host count at time ``t`` (0 outside the schedule span)."""
        if not self.times or t < self.times[0]:
            return 0
        idx = bisect.bisect_right(self.times, t) - 1
        return self.counts[idx]

    @property
    def peak(self) -> int:
        return max(self.counts, default=0)

    def average(self) -> float:
        """Time-averaged busy host count over the profile's span."""
        if len(self.times) < 2:
            return 0.0
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.counts[i] * (self.times[i + 1] - self.times[i])
        span = self.times[-1] - self.times[0]
        return total / span if span > 0 else 0.0

    def time_with_count(self, predicate: Callable[[int], bool]) -> float:
        """Total duration during which ``predicate(busy_count)`` holds."""
        total = 0.0
        for i in range(len(self.times) - 1):
            if predicate(self.counts[i]):
                total += self.times[i + 1] - self.times[i]
        return total


def utilization_profile(
    schedule: Schedule, *, types: Iterable[str] | None = None
) -> UtilizationProfile:
    """Busy-host step function, counting each held host once per holder.

    Tasks of type ``composite`` are excluded to avoid double counting.
    """
    wanted = set(types) if types is not None else None
    events: dict[float, int] = {}
    for t in _real_tasks(schedule):
        if wanted is not None and t.type not in wanted:
            continue
        if t.duration <= 0:
            continue
        events[t.start_time] = events.get(t.start_time, 0) + t.num_hosts
        events[t.end_time] = events.get(t.end_time, 0) - t.num_hosts
    if not events:
        return UtilizationProfile((), ())
    times = sorted(events)
    counts: list[int] = []
    running = 0
    for tm in times:
        running += events[tm]
        counts.append(running)
    return UtilizationProfile(tuple(times), tuple(counts))


def busy_hosts_at(schedule: Schedule, t: float, *, types: Iterable[str] | None = None) -> int:
    """Number of busy hosts at instant ``t``."""
    return utilization_profile(schedule, types=types).value_at(t)


def per_type_area(schedule: Schedule) -> dict[str, float]:
    """Busy area per task type (composites excluded)."""
    area: dict[str, float] = {}
    for t in _real_tasks(schedule):
        area[t.type] = area.get(t.type, 0.0) + t.duration * t.num_hosts
    return area


def per_host_busy_time(
    schedule: Schedule, *, types: Iterable[str] | None = None
) -> dict[tuple[str, int], float]:
    """Busy seconds per (cluster id, host), counting shared intervals once per task."""
    wanted = set(types) if types is not None else None
    busy: dict[tuple[str, int], float] = {
        (c.id, h): 0.0 for c in schedule.clusters for h in c.hosts()
    }
    for t in _real_tasks(schedule):
        if wanted is not None and t.type not in wanted:
            continue
        for conf in t.configurations:
            for r in conf.host_ranges:
                for h in r.hosts():
                    busy[(conf.cluster_id, h)] += t.duration
    return busy


def low_utilization_windows(
    schedule: Schedule,
    threshold: int,
    *,
    min_duration: float = 0.0,
    types: Iterable[str] | None = None,
) -> list[tuple[float, float]]:
    """Maximal windows where at most ``threshold`` hosts are busy.

    This is the programmatic version of spotting the "holes" of Figures 4,
    11 and 12.  Only windows inside the schedule span and at least
    ``min_duration`` long are reported.  An empty schedule or a zero-span
    timeframe has no windows: the result is ``[]``, never an error.
    """
    profile = utilization_profile(schedule, types=types)
    if len(profile.times) < 2:
        return []
    windows: list[tuple[float, float]] = []
    open_start: float | None = None
    for i in range(len(profile.times) - 1):
        low = profile.counts[i] <= threshold
        if low and open_start is None:
            open_start = profile.times[i]
        elif not low and open_start is not None:
            windows.append((open_start, profile.times[i]))
            open_start = None
    if open_start is not None:
        windows.append((open_start, profile.times[-1]))
    return [(a, b) for a, b in windows if b - a >= min_duration]


def area_lower_bound(schedule: Schedule) -> float:
    """The paper's ``T_A`` bound: average work per processor.

    ``T_A = (1/P) * sum_v T(v, p_v) * p_v`` is a lower bound on the makespan
    of any space-shared schedule of the same tasks.
    """
    hosts = schedule.num_hosts
    if hosts == 0:
        return 0.0
    return total_busy_area(schedule) / hosts
