"""Selection, hit-testing and task inspection (interactive mode logic).

In the original Swing GUI, clicking a task rectangle pops up the task's
start/finish times and its resource list; typing filters restrict the view
to clusters, types, or users.  This module implements that logic as pure
functions over the schedule plane, where time is the x axis and global
resource rows (see :meth:`repro.core.model.Schedule.cluster_offset`) the
y axis: resource row ``k`` spans ``[k, k+1)``.

All intervals here are half-open — task time ``[start, end)``, rows
``[k, k+1)`` — matching the :class:`repro.core.viewport.Viewport`
convention, so hit-testing and viewport containment agree on boundary
points.  The embedded JavaScript of the HTML export
(:mod:`repro.render.backends.html`) mirrors exactly these semantics.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.core.model import Schedule, Task

__all__ = ["TaskInfo", "hit_test", "tasks_in_region", "describe_task", "Selection"]


def _task_rows(schedule: Schedule, task: Task) -> list[tuple[int, int]]:
    """Global row intervals ``[lo, hi)`` covered by a task's rectangles."""
    rows: list[tuple[int, int]] = []
    for conf in task.configurations:
        off = schedule.cluster_offset(conf.cluster_id)
        for r in conf.host_ranges:
            rows.append((off + r.start, off + r.stop))
    return rows


def hit_test(schedule: Schedule, t: float, row: float) -> Task | None:
    """The topmost task whose rectangle contains plane point ``(t, row)``.

    "Topmost" is the task registered last, matching draw order where later
    tasks (e.g. composites) paint over earlier ones.  Returns ``None`` when
    the point lies on idle background.
    """
    hit: Task | None = None
    for task in schedule:
        if not (task.start_time <= t < task.end_time):
            continue
        for lo, hi in _task_rows(schedule, task):
            if lo <= row < hi:
                hit = task
                break
    return hit


def tasks_in_region(
    schedule: Schedule, t0: float, t1: float, row0: float, row1: float
) -> tuple[Task, ...]:
    """All tasks whose rectangles intersect the given plane region."""
    if t1 < t0:
        t0, t1 = t1, t0
    if row1 < row0:
        row0, row1 = row1, row0
    found = []
    for task in schedule:
        if not (task.start_time < t1 and t0 < task.end_time):
            continue
        if any(lo < row1 and row0 < hi for lo, hi in _task_rows(schedule, task)):
            found.append(task)
    return tuple(found)


@dataclass(frozen=True, slots=True)
class TaskInfo:
    """Inspector payload shown when a task is clicked."""

    task_id: str
    type: str
    start_time: float
    end_time: float
    duration: float
    num_hosts: int
    resources: tuple[tuple[str, tuple[int, ...]], ...]
    meta: tuple[tuple[str, str], ...]

    def to_json(self) -> dict:
        """Plain-JSON form of the inspector payload.

        This is the exact shape the HTML export embeds per task (see
        :mod:`repro.render.html_payload`), so the browser inspector and
        :meth:`lines` stay field-for-field equivalent.
        """
        return {
            "id": self.task_id,
            "type": self.type,
            "start": self.start_time,
            "end": self.end_time,
            "duration": self.duration,
            "num_hosts": self.num_hosts,
            "resources": [[cluster_id, _format_hosts(hosts)]
                          for cluster_id, hosts in self.resources],
            "meta": {k: v for k, v in self.meta},
        }

    def lines(self) -> list[str]:
        """Human-readable inspector text."""
        out = [
            f"task {self.task_id} ({self.type})",
            f"  start:    {self.start_time:.6g}",
            f"  finish:   {self.end_time:.6g}",
            f"  duration: {self.duration:.6g}",
            f"  hosts:    {self.num_hosts}",
        ]
        for cluster_id, hosts in self.resources:
            out.append(f"  cluster {cluster_id}: {_format_hosts(hosts)}")
        for k, v in self.meta:
            out.append(f"  {k} = {v}")
        return out


def _format_hosts(hosts: tuple[int, ...]) -> str:
    """Compact host list: '0-7' or '0-3,8,12-13'."""
    from repro.core.model import hosts_to_ranges

    parts = []
    for r in hosts_to_ranges(hosts):
        parts.append(str(r.start) if r.nb == 1 else f"{r.start}-{r.stop - 1}")
    return ",".join(parts)


def describe_task(task: Task) -> TaskInfo:
    """Build the inspector payload for a task."""
    return TaskInfo(
        task_id=task.id,
        type=task.type,
        start_time=task.start_time,
        end_time=task.end_time,
        duration=task.duration,
        num_hosts=task.num_hosts,
        resources=tuple((c.cluster_id, c.hosts()) for c in task.configurations),
        meta=tuple(sorted(task.meta.items())),
    )


class Selection:
    """A mutable set of selected task ids with toggle semantics.

    Models click-to-select / click-again-to-deselect of the GUI, plus
    predicate-based bulk selection (e.g. "select all of user 6447").
    """

    def __init__(self, schedule: Schedule):
        self._schedule = schedule
        self._ids: set[str] = set()

    @property
    def ids(self) -> frozenset[str]:
        return frozenset(self._ids)

    @property
    def tasks(self) -> tuple[Task, ...]:
        return tuple(t for t in self._schedule if t.id in self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, task_id: object) -> bool:
        return task_id in self._ids

    def toggle(self, task_id: str) -> bool:
        """Toggle one task; returns True when it ends up selected."""
        self._schedule.task(task_id)  # validate existence
        if task_id in self._ids:
            self._ids.discard(task_id)
            return False
        self._ids.add(task_id)
        return True

    def select_where(self, predicate: Callable[[Task], bool]) -> int:
        """Add every matching task; returns how many were added."""
        added = 0
        for t in self._schedule:
            if predicate(t) and t.id not in self._ids:
                self._ids.add(t.id)
                added += 1
        return added

    def select_meta(self, key: str, value: str) -> int:
        """Select all tasks whose meta ``key`` equals ``value``."""
        return self.select_where(lambda t: t.meta.get(key) == value)

    def clear(self) -> None:
        self._ids.clear()

    def highlighted_schedule(self, *, highlight_type: str | None = None) -> Schedule:
        """Copy of the schedule with selected tasks retyped for highlighting.

        Selected tasks get type ``highlight_type`` (default
        ``"<type>:selected"``) so a color map can paint them distinctly —
        this is how Figure 13 turns one user's jobs yellow.
        """
        out = Schedule(self._schedule.clusters, meta=self._schedule.meta)
        for t in self._schedule:
            if t.id in self._ids:
                new_type = highlight_type if highlight_type else f"{t.type}:selected"
                out.add_task(Task(t.id, new_type, t.start_time, t.end_time,
                                  t.configurations, t.meta))
            else:
                out.add_task(t)
        return out
