"""Core schedule model: the paper's primary contribution.

Re-exports the central types so ``from repro.core import Schedule, Task``
works without knowing the module layout.
"""

from repro.core.colormap import (
    Color,
    ColorMap,
    CompositeRule,
    TaskStyle,
    auto_colormap,
    auto_colormap_types,
    default_colormap,
    grayscale_colormap,
)
from repro.core.composite import build_composite_tasks, with_composites
from repro.core.diff import ScheduleDiff, TaskDelta, diff_schedules
from repro.core.model import (
    COMPOSITE_TYPE,
    Cluster,
    Configuration,
    HostRange,
    Schedule,
    Task,
    hosts_to_ranges,
    merge_host_ranges,
)
from repro.core.select import Selection, describe_task, hit_test, tasks_in_region
from repro.core.slices import (
    SLICE_SEP,
    is_continuation,
    is_preempted,
    job_of,
    job_processing_times,
    job_slices,
    slice_index,
    slice_task,
    validate_slices,
)
from repro.core.stats import (
    UtilizationProfile,
    area_lower_bound,
    busy_hosts_at,
    idle_area,
    low_utilization_windows,
    per_host_busy_time,
    per_type_area,
    total_busy_area,
    utilization,
    utilization_profile,
)
from repro.core.timeframe import TimeFrame, ViewMode, cluster_frame, frames_for, global_frame
from repro.core.validate import Violation, assert_valid, validate_schedule
from repro.core.viewport import Viewport

__all__ = [
    "COMPOSITE_TYPE",
    "SLICE_SEP",
    "Cluster",
    "ScheduleDiff",
    "TaskDelta",
    "Color",
    "ColorMap",
    "CompositeRule",
    "Configuration",
    "HostRange",
    "Schedule",
    "Selection",
    "Task",
    "TaskStyle",
    "TimeFrame",
    "UtilizationProfile",
    "ViewMode",
    "Viewport",
    "Violation",
    "area_lower_bound",
    "assert_valid",
    "auto_colormap",
    "auto_colormap_types",
    "build_composite_tasks",
    "busy_hosts_at",
    "cluster_frame",
    "default_colormap",
    "describe_task",
    "diff_schedules",
    "frames_for",
    "global_frame",
    "grayscale_colormap",
    "hit_test",
    "hosts_to_ranges",
    "idle_area",
    "is_continuation",
    "is_preempted",
    "job_of",
    "job_processing_times",
    "job_slices",
    "low_utilization_windows",
    "merge_host_ranges",
    "slice_index",
    "slice_task",
    "per_host_busy_time",
    "per_type_area",
    "tasks_in_region",
    "total_busy_area",
    "utilization",
    "utilization_profile",
    "validate_schedule",
    "validate_slices",
    "with_composites",
]
