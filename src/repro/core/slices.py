"""Preemption-aware schedules: jobs rendered as sets of task *slices*.

The core :class:`~repro.core.model.Task` is one uninterrupted rectangle.
Preemptive schedulers (round-robin, SRPT, MLFQ, CFS — see
:mod:`repro.sched.online`) execute a job as several disjoint intervals, so a
preempted job maps to several tasks, one per slice.  This module fixes the
encoding every backend already understands:

* a slice of job ``J`` is a task with id ``"<J>@<k>"`` (``k`` = slice index,
  0-based in execution order) and meta entries ``job=<J>``, ``slice=<k>``;
* a slice that ends in preemption (the job still has work left afterwards)
  additionally carries ``preempted=1`` — the renderer draws those with a
  continuation chevron at the right edge;
* single-slice (never preempted) jobs may be emitted as plain tasks.

Because slices are ordinary tasks, every existing format, renderer and
statistic works on preemptive schedules unchanged; this module adds the
job-level view back: grouping, per-job processing time, and the structural
invariants ("slices of one job never overlap and sum to its processing
time") that the preemptive simulators are tested against.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.model import Schedule, Task
from repro.errors import ScheduleError

__all__ = [
    "SLICE_SEP",
    "slice_task",
    "job_of",
    "slice_index",
    "is_continuation",
    "is_preempted",
    "job_slices",
    "job_processing_times",
    "validate_slices",
]

#: Separator between the job id and the slice index in a slice task id.
SLICE_SEP = "@"


def slice_task(
    job_id: str | int,
    index: int,
    type: str,
    start_time: float,
    end_time: float,
    configurations,
    *,
    preempted: bool = False,
    meta: Mapping[str, str] | None = None,
) -> Task:
    """Build one slice task with the canonical id and meta encoding."""
    if index < 0:
        raise ScheduleError(f"slice index must be >= 0, got {index}")
    merged = dict(meta or {})
    merged["job"] = str(job_id)
    merged["slice"] = str(index)
    if preempted:
        merged["preempted"] = "1"
    return Task(f"{job_id}{SLICE_SEP}{index}", type, start_time, end_time,
                configurations, merged)


def job_of(task: Task) -> str:
    """The job a task belongs to (itself, for plain unsliced tasks)."""
    return str(task.meta.get("job", task.id))


def slice_index(task: Task) -> int:
    """Execution-order index of a slice (0 for plain unsliced tasks)."""
    try:
        return int(task.meta.get("slice", 0))
    except (TypeError, ValueError):
        return 0


def is_continuation(task: Task) -> bool:
    """True for every slice after a job's first one."""
    return slice_index(task) > 0


def is_preempted(task: Task) -> bool:
    """True when the slice ends in preemption (the job continues later)."""
    return task.meta.get("preempted") == "1"


def job_slices(schedule: Schedule) -> dict[str, list[Task]]:
    """Group a schedule's tasks by job, slices sorted by start time.

    Plain tasks group as single-slice jobs, so the result is a total
    job-level view of any schedule.
    """
    groups: dict[str, list[Task]] = {}
    for task in schedule:
        groups.setdefault(job_of(task), []).append(task)
    for slices in groups.values():
        slices.sort(key=lambda t: (t.start_time, slice_index(t)))
    return groups


def job_processing_times(schedule: Schedule) -> dict[str, float]:
    """Total executed time per job (the sum of its slice durations)."""
    return {job: sum(t.duration for t in slices)
            for job, slices in job_slices(schedule).items()}


def validate_slices(
    schedule: Schedule,
    *,
    processing_times: Mapping[str, float] | None = None,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-6,
) -> list[str]:
    """Check the slice invariants; returns human-readable violations.

    Checked per job: slice indices are ``0..n-1`` without gaps and ordered
    like the slice start times; slices never overlap in time; every slice
    but the last is marked ``preempted``; and — when ``processing_times``
    gives the job's required work — slice durations sum to it.
    """
    violations: list[str] = []
    for job, slices in job_slices(schedule).items():
        indices = [slice_index(t) for t in slices]
        if sorted(indices) != list(range(len(slices))):
            violations.append(f"job {job!r}: slice indices {indices} are not 0..{len(slices) - 1}")
        elif indices != list(range(len(slices))):
            violations.append(f"job {job!r}: slice order by time disagrees with slice indices")
        for prev, cur in zip(slices, slices[1:]):
            if cur.start_time < prev.end_time - abs_tol:
                violations.append(
                    f"job {job!r}: slices {prev.id} and {cur.id} overlap "
                    f"([{prev.start_time:.6g}, {prev.end_time:.6g}] vs "
                    f"[{cur.start_time:.6g}, {cur.end_time:.6g}])")
        for t in slices[:-1]:
            if not is_preempted(t):
                violations.append(f"job {job!r}: non-final slice {t.id} not marked preempted")
        if slices and is_preempted(slices[-1]):
            violations.append(f"job {job!r}: final slice {slices[-1].id} marked preempted")
        if processing_times is not None and job in processing_times:
            want = float(processing_times[job])
            got = sum(t.duration for t in slices)
            if abs(got - want) > max(abs_tol, rel_tol * max(abs(want), 1.0)):
                violations.append(
                    f"job {job!r}: slices sum to {got:.6g}, processing time is {want:.6g}")
    return violations
