"""Structural sanity checks on schedules.

The paper motivates visualization partly as a *sanity checking* aid (e.g.
"checking the number of requested and assigned processors for a
multiprocessor job").  This module provides the programmatic counterpart:
machine-checkable invariants that schedules produced by correct scheduling
algorithms must satisfy.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.model import Schedule, Task
from repro.errors import ValidationError

__all__ = ["Violation", "validate_schedule", "check_exclusive_resources", "assert_valid"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected invariant violation."""

    kind: str
    message: str
    task_ids: tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


def validate_schedule(
    schedule: Schedule,
    *,
    expected_hosts: dict[str, int] | None = None,
    forbid_overlap_types: Iterable[str] = (),
) -> list[Violation]:
    """Collect violations without raising.

    Structural checks (unknown clusters / out-of-range hosts / negative
    durations) are enforced at construction time by the model itself, so here
    we check the *semantic* properties:

    * ``task-hosts``: when ``expected_hosts`` gives a per-task host count
      (keyed by task id), the bound resources must match the request —
      the paper's "requested vs assigned processors" sanity check;
    * ``overlap``: tasks whose type is in ``forbid_overlap_types`` must not
      share a host while overlapping in time (e.g. two computations cannot
      timeshare a CPU in a space-shared cluster model).
    """
    violations: list[Violation] = []
    if expected_hosts:
        for task_id, expected in expected_hosts.items():
            if not schedule.has_task(task_id):
                violations.append(Violation(
                    "task-hosts", f"expected task {task_id!r} is missing", (str(task_id),)))
                continue
            task = schedule.task(task_id)
            if task.num_hosts != expected:
                violations.append(Violation(
                    "task-hosts",
                    f"task {task_id!r} requested {expected} hosts but holds {task.num_hosts}",
                    (task.id,),
                ))
    forbid = set(forbid_overlap_types)
    if forbid:
        violations.extend(check_exclusive_resources(
            [t for t in schedule if t.type in forbid]))
    return violations


def check_exclusive_resources(tasks: Iterable[Task]) -> list[Violation]:
    """Report every pair of tasks that timeshare at least one host.

    Uses a sweep over start/end events per (cluster, host) so the common
    non-overlapping case is near-linear instead of quadratic in tasks.
    """
    by_host: dict[tuple[str, int], list[Task]] = {}
    for t in tasks:
        for conf in t.configurations:
            for r in conf.host_ranges:
                for h in r.hosts():
                    by_host.setdefault((conf.cluster_id, h), []).append(t)

    seen_pairs: set[tuple[str, str]] = set()
    violations: list[Violation] = []
    for (cluster_id, host), holders in by_host.items():
        if len(holders) < 2:
            continue
        holders.sort(key=lambda t: (t.start_time, t.end_time))
        for i, a in enumerate(holders):
            for b in holders[i + 1:]:
                if b.start_time >= a.end_time:
                    break  # sorted by start: no later task can overlap `a`
                pair = tuple(sorted((a.id, b.id)))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                violations.append(Violation(
                    "overlap",
                    f"tasks {pair[0]!r} and {pair[1]!r} timeshare host "
                    f"{host} of cluster {cluster_id!r}",
                    pair,
                ))
    return violations


def assert_valid(schedule: Schedule, **kwargs) -> None:
    """Raise :class:`ValidationError` listing all violations, if any."""
    violations = validate_schedule(schedule, **kwargs)
    if violations:
        raise ValidationError(
            f"{len(violations)} violation(s): " + "; ".join(str(v) for v in violations)
        )
