"""Schedule diffing.

Section IV-B: "A comparison of the Jedule outputs with and without
backfilling allows for a check that no task is delayed by this step."
This module performs that comparison programmatically: given two schedules
(before/after some transformation), it classifies every task as unchanged,
moved in time, reallocated (different hosts), retyped, added or removed —
and summarizes time deltas so "no task is delayed" is one assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import Schedule, Task

__all__ = ["TaskDelta", "ScheduleDiff", "diff_schedules"]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class TaskDelta:
    """How one task differs between the two schedules."""

    task_id: str
    kind: str                    # moved | reallocated | retyped | resized
    start_delta: float = 0.0     # after - before
    end_delta: float = 0.0

    def __str__(self) -> str:
        extras = ""
        if self.kind in ("moved", "resized"):
            extras = f" (start {self.start_delta:+.6g}, end {self.end_delta:+.6g})"
        return f"{self.task_id}: {self.kind}{extras}"


@dataclass
class ScheduleDiff:
    """The full comparison result."""

    unchanged: list[str] = field(default_factory=list)
    deltas: list[TaskDelta] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    makespan_delta: float = 0.0

    @property
    def identical(self) -> bool:
        return not (self.deltas or self.added or self.removed)

    def delayed_tasks(self, eps: float = _EPS) -> list[TaskDelta]:
        """Tasks finishing later in the second schedule — the backfilling
        no-delay check is ``diff.delayed_tasks() == []``."""
        return [d for d in self.deltas if d.end_delta > eps]

    def moved_earlier(self, eps: float = _EPS) -> list[TaskDelta]:
        return [d for d in self.deltas if d.end_delta < -eps]

    def summary(self) -> str:
        lines = [
            f"unchanged: {len(self.unchanged)}",
            f"changed:   {len(self.deltas)}",
            f"added:     {len(self.added)}",
            f"removed:   {len(self.removed)}",
            f"makespan:  {self.makespan_delta:+.6g}",
            f"delayed:   {len(self.delayed_tasks())}",
        ]
        return "\n".join(lines)


def _classify(before: Task, after: Task) -> TaskDelta | None:
    if after.type != before.type:
        return TaskDelta(before.id, "retyped")
    if after.configurations != before.configurations:
        return TaskDelta(before.id, "reallocated",
                         after.start_time - before.start_time,
                         after.end_time - before.end_time)
    ds = after.start_time - before.start_time
    de = after.end_time - before.end_time
    if abs(ds) <= _EPS and abs(de) <= _EPS:
        return None
    if abs(after.duration - before.duration) <= _EPS:
        return TaskDelta(before.id, "moved", ds, de)
    return TaskDelta(before.id, "resized", ds, de)


def diff_schedules(before: Schedule, after: Schedule) -> ScheduleDiff:
    """Compare two schedules task-by-task (matched on task id)."""
    diff = ScheduleDiff(
        makespan_delta=after.makespan - before.makespan,
    )
    before_ids = {t.id for t in before}
    after_ids = {t.id for t in after}
    diff.removed = sorted(before_ids - after_ids)
    diff.added = sorted(after_ids - before_ids)
    for t in before:
        if t.id not in after_ids:
            continue
        delta = _classify(t, after.task(t.id))
        if delta is None:
            diff.unchanged.append(t.id)
        else:
            diff.deltas.append(delta)
    return diff
