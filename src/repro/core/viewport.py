"""Viewport model backing the interactive mode (paper Section II-D-1).

The Swing GUI of the original tool lets the user zoom with the mouse wheel,
zoom into a rubber-band rectangle, drag to pan, and reset.  All of those
operations are pure transformations of a *viewport*: a window
``[t0, t1] x [r0, r1]`` over the (time, resource) plane.  This module
implements that algebra headlessly so it is testable and reusable both by
the terminal interactive mode and by any GUI embedding.

Resources use fractional units — resource row ``k`` occupies ``[k, k+1)`` —
so a viewport can cut through the middle of a row when zooming.

**Interval convention:** the viewport window is half-open on both axes,
``[t0, t1) x [r0, r1)``, matching task time intervals ``[start, end)``,
row semantics ``[k, k+1)`` and the hit-testing in :mod:`repro.core.select`.
A point exactly on ``t1`` or ``r1`` belongs to the *next* window, so
:meth:`Viewport.contains`, :meth:`Viewport.intersects_time` and
:func:`repro.core.select.hit_test` always agree on boundary points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.model import Schedule
from repro.core.timeframe import TimeFrame

__all__ = ["Viewport"]

_MIN_SPAN = 1e-12


@dataclass(frozen=True, slots=True)
class Viewport:
    """A rectangular window over the schedule plane."""

    t0: float
    t1: float
    r0: float
    r1: float

    def __post_init__(self) -> None:
        if not (self.t1 > self.t0 and self.r1 > self.r0):
            raise ValueError(
                f"degenerate viewport [{self.t0},{self.t1}]x[{self.r0},{self.r1}]"
            )

    # ----------------------------------------------------------- factories
    @classmethod
    def fit(cls, schedule: Schedule, *, pad: float = 0.0) -> "Viewport":
        """Viewport showing the entire schedule, optionally padded in time."""
        start, end = schedule.start_time, schedule.end_time
        if end <= start:
            end = start + 1.0
        span = end - start
        rows = max(schedule.num_hosts, 1)
        return cls(start - pad * span, end + pad * span, 0.0, float(rows))

    # ----------------------------------------------------------- properties
    @property
    def time_span(self) -> float:
        return self.t1 - self.t0

    @property
    def resource_span(self) -> float:
        return self.r1 - self.r0

    @property
    def time_frame(self) -> TimeFrame:
        return TimeFrame(self.t0, self.t1)

    @property
    def center(self) -> tuple[float, float]:
        return ((self.t0 + self.t1) / 2, (self.r0 + self.r1) / 2)

    def contains(self, t: float, r: float) -> bool:
        """True when plane point ``(t, r)`` lies in ``[t0, t1) x [r0, r1)``.

        Half-open on both axes (see the module docstring): a click exactly
        on ``t1``/``r1`` is *outside*, consistent with
        :meth:`intersects_time` and :func:`repro.core.select.hit_test` —
        it used to be closed on both ends, so such a click "contained" a
        point no task could ever be hit at.
        """
        return self.t0 <= t < self.t1 and self.r0 <= r < self.r1

    def intersects_time(self, start: float, end: float) -> bool:
        """True when interval ``[start, end)`` is at least partly visible."""
        return start < self.t1 and self.t0 < end

    # ------------------------------------------------------------- algebra
    def zoom(self, factor: float, *, at: tuple[float, float] | None = None) -> "Viewport":
        """Scale the window by ``1/factor`` about an anchor point.

        ``factor > 1`` zooms in (mouse wheel up), ``0 < factor < 1`` zooms
        out.  ``at`` is the fixed point (defaults to the center), so zooming
        at the cursor keeps the schedule feature under the cursor in place.
        ``zoom(f).zoom(1/f)`` is the identity (up to float rounding).
        """
        if factor <= 0:
            raise ValueError(f"zoom factor must be > 0, got {factor}")
        ct, cr = at if at is not None else self.center
        new_tspan = max(self.time_span / factor, _MIN_SPAN)
        new_rspan = max(self.resource_span / factor, _MIN_SPAN)
        ft = (ct - self.t0) / self.time_span
        fr = (cr - self.r0) / self.resource_span
        t0 = ct - ft * new_tspan
        r0 = cr - fr * new_rspan
        return Viewport(t0, t0 + new_tspan, r0, r0 + new_rspan)

    def pan(self, dt: float, dr: float = 0.0) -> "Viewport":
        """Translate the window (mouse drag)."""
        return Viewport(self.t0 + dt, self.t1 + dt, self.r0 + dr, self.r1 + dr)

    def pan_fraction(self, ft: float, fr: float = 0.0) -> "Viewport":
        """Pan by fractions of the current spans (keyboard arrows)."""
        return self.pan(ft * self.time_span, fr * self.resource_span)

    def zoom_to(self, t0: float, t1: float, r0: float | None = None,
                r1: float | None = None) -> "Viewport":
        """Rubber-band zoom: jump to an explicit sub-window.

        Omitted resource bounds keep the current resource window, which is
        the "specify a time frame that he might be interested in" behaviour.
        """
        if r0 is None:
            r0 = self.r0
        if r1 is None:
            r1 = self.r1
        if t1 - t0 < _MIN_SPAN:
            mid = (t0 + t1) / 2
            t0, t1 = mid - _MIN_SPAN / 2, mid + _MIN_SPAN / 2
        if r1 - r0 < _MIN_SPAN:
            mid = (r0 + r1) / 2
            r0, r1 = mid - _MIN_SPAN / 2, mid + _MIN_SPAN / 2
        return Viewport(t0, t1, r0, r1)

    def clamped_to(self, bounds: "Viewport") -> "Viewport":
        """Translate/shrink this window so it fits inside ``bounds``.

        Used to stop panning past the edges of the schedule.
        """
        tspan = min(self.time_span, bounds.time_span)
        rspan = min(self.resource_span, bounds.resource_span)
        t0 = min(max(self.t0, bounds.t0), bounds.t1 - tspan)
        r0 = min(max(self.r0, bounds.r0), bounds.r1 - rspan)
        return Viewport(t0, t0 + tspan, r0, r0 + rspan)

    # ------------------------------------------------------- mapping helpers
    def to_unit(self, t: float, r: float) -> tuple[float, float]:
        """Map a plane point to [0,1]^2 viewport coordinates."""
        return ((t - self.t0) / self.time_span, (r - self.r0) / self.resource_span)

    def from_unit(self, x: float, y: float) -> tuple[float, float]:
        """Inverse of :meth:`to_unit`."""
        return (self.t0 + x * self.time_span, self.r0 + y * self.resource_span)
