"""Content-addressed on-disk cache for rendered schedule images.

A cache entry is keyed by the SHA-256 of everything that determines the
output bytes: the *canonical* schedule content (sorted-key compact JSON of
:func:`repro.io.json_fmt.to_dict`, so XML/JSON/CSV encodings of the same
schedule share entries), the render options fingerprint of the
:class:`~repro.render.api.RenderRequest` (style, layout, LOD, colormap,
filters), and the output format.  Regenerating the paper's figure set
therefore re-renders only schedules whose content or styling actually
changed — the rest is a file copy.

Entries are immutable blobs under ``root/ab/<key>``; writes go through a
temp file + :func:`os.replace`, so concurrent batch workers racing on the
same key at worst both render and one atomic rename wins.

Hashing the schedule content requires *parsing* the input, which on a warm
run would dominate the file copy that serves the hit.  The cache therefore
keeps a second, stat-based index under ``root/stat/``: (realpath, size,
mtime_ns) -> schedule digest.  An input whose stat triple is unchanged
skips the parse entirely; touching or rewriting the file invalidates the
stat entry, falling back to the content hash (make-style staleness — a
byte-identical rewrite merely re-derives the same digest).
"""

from __future__ import annotations

import hashlib
import json
import os
import string
import tempfile
import time
from pathlib import Path

from repro.core.model import Schedule

__all__ = ["CACHE_SCHEMA", "RenderCache", "schedule_digest", "cache_key",
           "cache_key_from_digest"]

#: Bump to invalidate every existing cache entry (layout/encoder changes
#: that alter output bytes without changing any request field).
CACHE_SCHEMA = 1


def schedule_digest(schedule: Schedule) -> str:
    """SHA-256 of the canonical schedule bytes.

    Canonical = compact JSON with sorted keys over the structure-preserving
    dict form, so load order, file format and whitespace do not matter.
    """
    from repro.io.json_fmt import to_dict

    payload = json.dumps(to_dict(schedule), sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def cache_key_from_digest(digest: str, request) -> str:
    """Cache key from an already-known schedule digest plus the request."""
    token = {
        "schema": CACHE_SCHEMA,
        "schedule": digest,
        "options": request.fingerprint(),
    }
    payload = json.dumps(token, sort_keys=True, separators=(",", ":"),
                         default=repr).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def cache_key(schedule: Schedule, request) -> str:
    """Cache key of one (schedule, request) render job."""
    return cache_key_from_digest(schedule_digest(schedule), request)


def _valid_digest(text: str) -> bool:
    """True for a plausible SHA-256 hex digest (torn entries fail this)."""
    return len(text) == 64 and all(c in string.hexdigits for c in text)


def stat_token(path: str | Path) -> str | None:
    """Identity of an input file as it sits on disk, or None if unstatable."""
    try:
        path = Path(path).resolve()
        st = path.stat()
    except OSError:
        return None
    payload = f"{path}\x00{st.st_size}\x00{st.st_mtime_ns}".encode()
    return hashlib.sha256(payload).hexdigest()


class RenderCache:
    """A directory of content-addressed rendered blobs."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / key

    def get(self, key: str) -> bytes | None:
        """The cached bytes for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return data

    def put(self, key: str, data: bytes) -> Path:
        """Store ``data`` under ``key`` atomically; returns the blob path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ----------------------------------------------- stat -> digest index
    def digest_hint(self, input_path: str | Path) -> str | None:
        """Remembered schedule digest for an unchanged input file.

        Returns ``None`` when the file's (path, size, mtime) triple has no
        entry — i.e. the input is new or was touched since
        :meth:`remember_digest` recorded it.

        The index may be shared by a batch run and a resident render
        service racing on the same directory, so a read that surfaces a
        torn or junk entry (a non-atomic writer, a crashed one, bit rot)
        is retried once and then treated as a plain miss; the bad entry
        is unlinked so the next :meth:`remember_digest` rewrites it.
        """
        token = stat_token(input_path)
        if token is None:
            return None
        entry = self.root / "stat" / token[:2] / token
        for attempt in range(2):
            try:
                digest = entry.read_text("ascii").strip()
            except (OSError, UnicodeDecodeError):
                return None
            if _valid_digest(digest):
                return digest
            if attempt == 0:  # maybe mid-replace: give the writer a beat
                time.sleep(0.01)
        try:
            entry.unlink()
        except OSError:
            pass
        return None

    def remember_digest(self, input_path: str | Path, digest: str, *,
                        token: str | None = None) -> None:
        """Record the content digest of an input file.

        Pass the ``token`` captured by :func:`stat_token` *before* parsing
        the file: if the file is rewritten while it is being parsed, the
        pre-parse token no longer matches the on-disk file, so the entry
        written here simply becomes unreachable instead of wrong.
        """
        if token is None:
            token = stat_token(input_path)
        if token is None:
            return
        path = self.root / "stat" / token[:2] / token
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w", encoding="ascii") as fh:
                fh.write(digest)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def sweep_tmp(self, *, max_age_s: float = 3600.0) -> int:
        """Remove temp litter left behind by writers that crashed mid-write.

        A crash between ``mkstemp`` and ``os.replace`` leaks a ``.tmp-*``
        file; entries themselves are never torn (the replace is atomic),
        so the litter is the only residue.  Young temp files may belong
        to a live writer and are left alone.  Returns files removed.
        """
        removed = 0
        cutoff = time.time() - max_age_s
        roots = list(self._shards())
        stat_root = self.root / "stat"
        if stat_root.is_dir():
            roots.extend(d for d in stat_root.iterdir() if d.is_dir())
        for shard in roots:
            for tmp in shard.glob(".tmp-*"):
                try:
                    if tmp.stat().st_mtime <= cutoff:
                        tmp.unlink()
                        removed += 1
                except OSError:
                    pass
        return removed

    def _shards(self):
        if not self.root.is_dir():
            return
        for shard in self.root.iterdir():
            if shard.is_dir() and shard.name != "stat":
                yield shard

    def __len__(self) -> int:
        """Number of stored blobs (the stat index does not count)."""
        return sum(1 for shard in self._shards()
                   for blob in shard.iterdir()
                   if blob.is_file() and not blob.name.startswith("."))

    def clear(self) -> int:
        """Delete every blob (and the stat index); returns blobs removed."""
        import shutil

        removed = 0
        for shard in list(self._shards()):
            for blob in list(shard.iterdir()):
                try:
                    blob.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                shard.rmdir()
            except OSError:
                pass
        shutil.rmtree(self.root / "stat", ignore_errors=True)
        return removed
