"""Parallel batch renderer: fan render requests out across warm workers.

The paper's command-line mode exists to mass-produce figures; this runner
makes that cheap and repeatable.  Each :class:`~repro.render.api.RenderRequest`
is executed by a worker of the process-wide **warm pool**
(:func:`repro.serve.pool.shared_pool`) — resident processes that
pre-import the render stack once and receive jobs over pipes as plain
JSON payloads, not pickled object graphs — consulting the
content-addressed :class:`~repro.batch.cache.RenderCache` first: a hit is
a file copy, a miss renders and populates the cache.  Repeated batch runs
in one process (a test session, a notebook, the render service) reuse the
same workers, so spawn + import cost is paid exactly once.

Robustness rules:

* one bad schedule never sinks the batch — the failure is captured in the
  :class:`BatchReport` and every other job still runs;
* jobs that exceed ``timeout_s`` are recorded as failures and their stuck
  worker is killed and respawned instead of abandoned;
* failed jobs are retried up to ``retries`` extra rounds with exponential
  backoff, for transient failures (NFS hiccups, OOM-killed workers —
  a crashed warm worker is restarted within its bounded budget).

The parent process owns observability: per-job spans
(``batch.job``), cache hit/miss counters (``batch.cache.hit`` /
``batch.cache.miss``) and — via :func:`batch_record` — one run-registry
record per batch.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from pathlib import Path
from time import perf_counter

from repro.batch.cache import (
    RenderCache,
    cache_key_from_digest,
    schedule_digest,
    stat_token,
)
from repro.batch.manifest import BatchManifest, load_manifest
from repro.errors import BatchError, ReproError
from repro.obs import core as _obs
from repro.render.api import RenderRequest, RenderResult

__all__ = ["BatchReport", "run_batch", "run_manifest", "batch_record",
           "execute_with_cache", "DEFAULT_CACHE_DIR"]

#: Cache location when a batch asks for caching but names no directory.
DEFAULT_CACHE_DIR = ".jedule-cache"


def execute_with_cache(request: RenderRequest,
                       cache_dir: str | None, *,
                       schedule_bytes: bytes | None = None) -> RenderResult:
    """Execute one request through the content-addressed cache.

    This is the warm-worker entry point, but it is just as happy running
    inline (``jobs=1``).  With ``cache_dir=None`` it degrades to a plain
    :func:`~repro.render.api.execute_request`.

    ``schedule_bytes`` is the *canonical* byte form of an in-memory
    schedule (:func:`repro.serve.protocol.canonical_schedule_bytes`):
    because those bytes are exactly what :func:`schedule_digest` hashes,
    the cache key is derived by hashing them directly — a repeat request
    is served without parsing the schedule at all.
    """
    from repro.render.api import execute_request

    def _schedule_from_bytes():
        from repro.serve.protocol import schedule_from_canonical

        return schedule_from_canonical(schedule_bytes)

    started = perf_counter()
    if cache_dir is None:
        return execute_request(
            request, _schedule_from_bytes() if schedule_bytes is not None
            else None)

    cache = RenderCache(cache_dir)
    schedule = None
    if schedule_bytes is not None:
        digest = hashlib.sha256(schedule_bytes).hexdigest()
    else:
        digest = (cache.digest_hint(request.input_path)
                  if request.input_path else None)
        if digest is None:
            token = stat_token(request.input_path) \
                if request.input_path else None
            schedule = request.load_schedule()
            digest = schedule_digest(schedule)
            if request.input_path:
                cache.remember_digest(request.input_path, digest, token=token)
    key = cache_key_from_digest(digest, request)
    data = cache.get(key)
    if data is not None:
        if request.output_path is not None:
            out = Path(request.output_path)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_bytes(data)
        return RenderResult(
            input_path=request.input_path,
            output_path=request.output_path,
            format=request.resolved_output_format(),
            nbytes=len(data),
            duration_s=perf_counter() - started,
            cache="hit",
            data=None if request.output_path is not None else data,
        )
    from repro.render.api import render_request_bytes

    if schedule is None:
        schedule = _schedule_from_bytes() if schedule_bytes is not None \
            else request.load_schedule()
    rendered = render_request_bytes(request, schedule)
    cache.put(key, rendered)
    if request.output_path is not None:
        out = Path(request.output_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(rendered)
    return RenderResult(
        input_path=request.input_path,
        output_path=request.output_path,
        format=request.resolved_output_format(),
        nbytes=len(rendered),
        duration_s=perf_counter() - started,
        cache="miss",
        data=None if request.output_path is not None else rendered,
    )


def _fmt(request: RenderRequest) -> str:
    """Best-effort output format for report rows (never raises)."""
    try:
        return request.resolved_output_format()
    except ReproError:
        return "?"


def _worker(request: RenderRequest, cache_dir: str | None) -> RenderResult:
    """Pool entry point: never raises; failures come back as results."""
    started = perf_counter()
    try:
        return execute_with_cache(request, cache_dir)
    except ReproError as exc:
        error = str(exc)
    except Exception as exc:  # defensive: a worker crash must stay a report row
        error = f"{type(exc).__name__}: {exc}"
    return RenderResult(
        input_path=request.input_path,
        output_path=request.output_path,
        format=_fmt(request),
        nbytes=0,
        duration_s=perf_counter() - started,
        cache="off" if cache_dir is None else "miss",
        error=error,
    )


@dataclass
class BatchReport:
    """Outcome of one batch run."""

    results: list[RenderResult] = field(default_factory=list)
    elapsed_s: float = 0.0
    workers: int = 1
    cache_dir: str | None = None
    name: str = "batch"

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failures(self) -> list[RenderResult]:
        return [r for r in self.results if not r.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.cache == "hit")

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.results if r.ok and r.cache == "miss")

    def error_table(self) -> str:
        """Human-readable per-job failure table (empty string when ok)."""
        rows = self.failures
        if not rows:
            return ""
        width = max(len(str(r.input_path)) for r in rows)
        lines = [f"{'input':<{width}}  attempts  error"]
        for r in rows:
            lines.append(f"{str(r.input_path):<{width}}  {r.attempts:>8}  {r.error}")
        return "\n".join(lines) + "\n"

    def summary(self) -> str:
        done = len(self.results) - len(self.failures)
        return (f"{self.name}: {done}/{len(self.results)} job(s) ok, "
                f"{self.cache_hits} cache hit(s), "
                f"{self.cache_misses} miss(es), "
                f"{len(self.failures)} failed, "
                f"{self.elapsed_s:.2f}s on {self.workers} worker(s)")

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "jobs": [r.to_json() for r in self.results],
        }


def _run_serial(requests, cache_dir, report: BatchReport) -> None:
    for request in requests:
        with _obs.span("batch.job", input=str(request.input_path)) as sp:
            result = _worker(request, cache_dir)
            sp.set(cache=result.cache, ok=result.ok)
        report.results.append(result)
        _record_result(result)


def _record_result(result: RenderResult) -> None:
    if result.cache == "hit":
        _obs.add("batch.cache.hit")
    elif result.ok and result.cache == "miss":
        _obs.add("batch.cache.miss")
    _obs.add("batch.jobs.ok" if result.ok else "batch.jobs.failed")


def _run_pool(requests, cache_dir, jobs, timeout_s,
              report: BatchReport) -> None:
    """Fan requests across the process-wide warm pool.

    The pool outlives this batch: repeated runs reuse the same resident
    workers (the fix for per-invocation spawn + import cost).  A worker
    stuck past the batch deadline is killed and respawned; a crashed
    worker fails only its own job, which the retry rounds above may
    still rescue.
    """
    from repro.serve.pool import shared_pool

    pool = shared_pool(jobs)
    results = pool.map_requests(requests, cache_dir=cache_dir,
                                deadline_s=timeout_s, max_parallel=jobs)
    _graft_worker_segments(results)
    for result in results:
        report.results.append(result)
        _record_result(result)


def _graft_worker_segments(results) -> None:
    """Splice worker-side span segments into the current batch trace.

    Warm-pool workers run each job under a local obs trace whenever the
    parent is capturing (see :mod:`repro.serve.pool`); grafting those
    segments here gives ``jedule batch --trace`` per-job ``render.*`` /
    ``io.*`` stage breakdowns across the process boundary for free.
    Segments of concurrently-run jobs overlap, so each becomes its own
    Chrome lane.
    """
    if not _obs.is_enabled():
        return
    from repro.obs.export import graft_trace_doc

    trace = _obs.current_trace()
    lane = 2  # lane 1 is the parent's own timeline
    for result in results:
        if result is None or result.worker_obs is None:
            continue
        try:
            graft_trace_doc(trace, result.worker_obs, tid=lane)
        except ValueError:
            _obs.add("batch.obs.bad_segment")
            continue
        lane += 1


def run_batch(
    requests,
    *,
    jobs: int | None = None,
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
    timeout_s: float | None = None,
    retries: int = 1,
    backoff_s: float = 0.25,
    name: str = "batch",
) -> BatchReport:
    """Render a batch of requests, in parallel, through the render cache.

    ``jobs`` defaults to ``os.cpu_count()``; ``timeout_s`` bounds the whole
    batch (per retry round).  Failed jobs are retried up to ``retries``
    extra rounds with exponential backoff.  Never raises for per-job
    failures — inspect ``report.ok`` / ``report.failures``; raises
    :class:`~repro.errors.BatchError` only when the batch itself is
    unrunnable (no requests, bad worker count).
    """
    requests = list(requests)
    if not requests:
        raise BatchError("batch has no render jobs")
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise BatchError(f"need >= 1 worker, got {jobs}")
    if retries < 0:
        raise BatchError(f"retries must be >= 0, got {retries}")
    cache = str(cache_dir) if (use_cache and cache_dir is not None) else None

    report = BatchReport(workers=jobs, cache_dir=cache, name=name)
    started = perf_counter()
    with _obs.span("batch.run", jobs=len(requests), workers=jobs,
                   cache=cache or "off"):
        if jobs == 1 or len(requests) == 1:
            _run_serial(requests, cache, report)
        else:
            _run_pool(requests, cache, jobs, timeout_s, report)

        round_no = 0
        while not report.ok and round_no < retries:
            round_no += 1
            time.sleep(backoff_s * (2 ** (round_no - 1)))
            retry_idx = [i for i, r in enumerate(report.results) if not r.ok]
            retry_requests = [requests[i] for i in retry_idx]
            _obs.add("batch.jobs.retried", len(retry_requests))
            sub = BatchReport(workers=jobs, cache_dir=cache)
            with _obs.span("batch.retry", round=round_no,
                           jobs=len(retry_requests)):
                if jobs == 1 or len(retry_requests) == 1:
                    _run_serial(retry_requests, cache, sub)
                else:
                    _run_pool(retry_requests, cache, jobs, timeout_s, sub)
            for slot, result in zip(retry_idx, sub.results):
                report.results[slot] = dc_replace(
                    result, attempts=report.results[slot].attempts + 1)
    report.elapsed_s = perf_counter() - started
    _obs.gauge("batch.elapsed_s", report.elapsed_s)
    return report


def run_manifest(
    manifest: BatchManifest | str | Path,
    **kwargs,
) -> BatchReport:
    """Run a parsed (or on-disk) manifest; manifest cache_dir is the default."""
    if not isinstance(manifest, BatchManifest):
        manifest = load_manifest(manifest)
    kwargs.setdefault("cache_dir", manifest.cache_dir or DEFAULT_CACHE_DIR)
    kwargs.setdefault("name", manifest.name)
    return run_batch(manifest.requests, **kwargs)


def batch_record(report: BatchReport, *, suite: str = "batch",
                 trace=None, meta: dict | None = None):
    """Build a run-registry record for one batch (append with ``RunLog``)."""
    from repro.obs.runlog import record_from_trace

    record = record_from_trace(
        suite, report.name, trace,
        timings_s={"batch_elapsed": [report.elapsed_s]},
        meta={"workers": report.workers, "jobs": len(report.results),
              "cache_dir": report.cache_dir,
              "failed": [str(r.input_path) for r in report.failures],
              **(meta or {})})
    # the trace counts per attempt; the report's final outcomes win
    record.counters["batch.cache.hit"] = float(report.cache_hits)
    record.counters["batch.cache.miss"] = float(report.cache_misses)
    record.counters["batch.jobs.ok"] = float(
        len(report.results) - len(report.failures))
    record.counters["batch.jobs.failed"] = float(len(report.failures))
    return record
