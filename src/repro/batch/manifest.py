"""Manifest-driven batch descriptions.

A manifest is a JSON file describing one reproducible figure set::

    {
      "name": "paper-figures",
      "output_dir": "output",
      "cache_dir": ".render-cache",
      "defaults": {"format": "png", "width": 900, "height": 480},
      "jobs": [
        {"input": "fig01_simple.jed", "title": "Figure 1"},
        {"input": "fig03_overlap.jed", "composites": true,
         "formats": ["png", "svg"]},
        {"input": "fig13_thunder.swf", "output": "thunder.png",
         "lod": "auto"}
      ]
    }

Relative paths resolve against the manifest's directory, so a manifest
checked into a repository regenerates its figures from any working
directory.  Every job entry becomes one (or, with ``formats``, several)
:class:`~repro.render.api.RenderRequest`; unknown keys fail fast with a
:class:`~repro.errors.ParseError` naming the offending job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ParseError
from repro.render.api import OUTPUT_FORMATS, RenderRequest, format_from_suffix

__all__ = ["BatchManifest", "load_manifest", "manifest_requests"]

#: manifest option key -> RenderRequest field
_OPTION_KEYS = {
    "input_format": "input_format",
    "format": "output_format",
    "width": "width",
    "height": "height",
    "mode": "mode",
    "title": "title",
    "lod": "lod",
    "style": "style_path",
    "cmap": "cmap_path",
    "grayscale": "grayscale",
    "auto_colors": "auto_colors",
    "types": "types",
    "clusters": "clusters",
    "window": "window",
    "composites": "composites",
    "with_profile": "with_profile",
    "html_threshold": "html_threshold",
    "html_tiers": "html_tiers",
}

_JOB_ONLY_KEYS = {"input", "output", "formats"}

_TOP_KEYS = {"name", "output_dir", "cache_dir", "defaults", "jobs"}


@dataclass(frozen=True)
class BatchManifest:
    """A parsed manifest: its identity plus the expanded render requests."""

    name: str
    path: str
    requests: tuple[RenderRequest, ...]
    cache_dir: str | None = None
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)


def _options_from(entry: dict, *, where: str, base: dict | None = None) -> dict:
    options = dict(base or {})
    for key, value in entry.items():
        if key in _JOB_ONLY_KEYS:
            continue
        target = _OPTION_KEYS.get(key)
        if target is None:
            raise ParseError(
                f"unknown option {key!r} in {where} "
                f"(allowed: {', '.join(sorted(_OPTION_KEYS))})")
        options[target] = value
    return options


def _resolve(base: Path, value: str) -> str:
    path = Path(value)
    return str(path if path.is_absolute() else base / path)


def manifest_requests(doc: dict, *, base_dir: str | Path = ".",
                      source: str = "<manifest>") -> list[RenderRequest]:
    """Expand a manifest document into concrete render requests."""
    base = Path(base_dir)
    unknown = set(doc) - _TOP_KEYS
    if unknown:
        raise ParseError(
            f"unknown manifest key(s) {', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(sorted(_TOP_KEYS))})", source=source)
    jobs = doc.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise ParseError("manifest needs a non-empty 'jobs' list", source=source)
    defaults = doc.get("defaults") or {}
    if not isinstance(defaults, dict):
        raise ParseError("'defaults' must be an object", source=source)
    base_options = _options_from(defaults, where="defaults")
    out_dir = base / doc.get("output_dir", ".")

    requests: list[RenderRequest] = []
    for i, entry in enumerate(jobs):
        where = f"jobs[{i}]"
        if not isinstance(entry, dict):
            raise ParseError(f"{where} must be an object", source=source)
        if "input" not in entry:
            raise ParseError(f"{where} needs an 'input' path", source=source)
        options = _options_from(entry, where=where, base=base_options)
        if options.get("style_path"):
            options["style_path"] = _resolve(base, options["style_path"])
        if options.get("cmap_path"):
            options["cmap_path"] = _resolve(base, options["cmap_path"])
        input_path = _resolve(base, str(entry["input"]))
        stem = Path(input_path).stem

        formats = entry.get("formats")
        if formats is not None:
            if "output" in entry:
                raise ParseError(f"{where}: give 'output' or 'formats', not both",
                                 source=source)
            if not isinstance(formats, list) or not formats:
                raise ParseError(f"{where}: 'formats' must be a non-empty list",
                                 source=source)
            for fmt in formats:
                fmt = str(fmt).lower()
                if fmt not in OUTPUT_FORMATS:
                    raise ParseError(
                        f"{where}: unknown output format {fmt!r} (supported: "
                        f"{', '.join(sorted(OUTPUT_FORMATS))})", source=source)
                requests.append(RenderRequest(
                    input_path=input_path,
                    output_path=str(out_dir / f"{stem}.{fmt}"),
                    **{**options, "output_format": fmt}))
            continue

        if "output" in entry:
            out = Path(str(entry["output"]))
            output_path = str(out if out.is_absolute() else out_dir / out)
        else:
            fmt = options.get("output_format") \
                or format_from_suffix(input_path, default="svg")
            output_path = str(out_dir / f"{stem}.{fmt}")
        try:
            requests.append(RenderRequest(input_path=input_path,
                                          output_path=output_path, **options))
        except (TypeError, ValueError) as exc:
            raise ParseError(f"{where}: {exc}", source=source) from exc
    return requests


def load_manifest(path: str | Path) -> BatchManifest:
    """Parse a manifest file into a :class:`BatchManifest`."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ParseError(f"malformed manifest JSON: {exc}", source=str(path)) from exc
    if not isinstance(doc, dict):
        raise ParseError("manifest must be a JSON object", source=str(path))
    base = path.parent
    requests = manifest_requests(doc, base_dir=base, source=str(path))
    cache_dir = doc.get("cache_dir")
    if cache_dir is not None:
        cache_dir = _resolve(base, str(cache_dir))
    return BatchManifest(
        name=str(doc.get("name") or path.stem),
        path=str(path),
        requests=tuple(requests),
        cache_dir=cache_dir,
        meta={"jobs": len(requests)},
    )
