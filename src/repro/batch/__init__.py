"""Parallel, cached, manifest-driven batch rendering.

The pieces:

* :mod:`repro.batch.manifest` — JSON manifests describing a figure set;
* :mod:`repro.batch.cache` — the content-addressed render cache;
* :mod:`repro.batch.runner` — the process-pool runner with per-job
  robustness (timeout, retry, partial-failure reporting).

Typical use::

    from repro.batch import run_manifest

    report = run_manifest("examples/batch/manifest.json", jobs=4)
    print(report.summary())
    if not report.ok:
        print(report.error_table())
"""

from repro.batch.cache import RenderCache, cache_key, schedule_digest
from repro.batch.manifest import BatchManifest, load_manifest, manifest_requests
from repro.batch.runner import (
    DEFAULT_CACHE_DIR,
    BatchReport,
    batch_record,
    execute_with_cache,
    run_batch,
    run_manifest,
)

__all__ = [
    "BatchManifest",
    "BatchReport",
    "DEFAULT_CACHE_DIR",
    "RenderCache",
    "batch_record",
    "cache_key",
    "execute_with_cache",
    "load_manifest",
    "manifest_requests",
    "run_batch",
    "run_manifest",
    "schedule_digest",
]
