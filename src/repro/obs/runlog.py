"""Cross-run observability: a persistent, append-only run registry.

PR 2 gave the pipeline *per-run* tracing; this module persists those runs
so they can be compared *across* commits.  Each observed run — a render,
a benchmark, a scheduler evaluation — is serialized as one
:class:`RunRecord`: per-stage timings aggregated from the
:class:`~repro.obs.core.Trace`, counters and gauge peaks, schedule-quality
metrics (makespan, utilization, stretch, fairness, bounded slowdown), and
an environment fingerprint (git sha, python, platform, timestamp) so a
record read months later still says where it came from.

Records land in an append-only JSONL file managed by :class:`RunLog`
(one JSON object per line, corrupt lines skipped on read, never
rewritten), the format Beránek et al. (arXiv:2204.07211) argue scheduler
comparisons need: machine-readable, per-run, environment-stamped.
``repro.obs.regress`` detects regressions over it and ``repro.obs.report``
renders it as a dashboard through the normal render backends.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import subprocess
import sys
import uuid
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.core import Trace

__all__ = [
    "SCHEMA_VERSION",
    "RunRecord",
    "RunLog",
    "env_fingerprint",
    "stage_summary",
    "record_from_trace",
    "schedule_metrics",
]

SCHEMA_VERSION = 1

_env_cache: dict | None = None


def _git_sha(cwd: str | Path | None = None) -> str:
    """Current git commit sha, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def env_fingerprint(*, fresh: bool = False) -> dict:
    """Where a record was produced: git sha, python, platform, machine.

    The fingerprint is cached per process (the git subprocess is not free);
    pass ``fresh=True`` to re-probe.
    """
    global _env_cache
    if _env_cache is None or fresh:
        _env_cache = {
            "git_sha": _git_sha(),
            "python": _platform.python_version(),
            "platform": sys.platform,
            "machine": _platform.machine(),
        }
    return dict(_env_cache)


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(slots=True)
class RunRecord:
    """One observed run, ready to be appended to a :class:`RunLog`.

    ``stages`` maps span name to ``{"calls", "total_s", "self_s"}``;
    ``timings_s`` holds explicit wall-clock measurements (e.g. min-of-k
    benchmark runs, as lists of seconds); ``metrics`` holds
    schedule-quality numbers (deterministic, hard-gated by the regression
    detector, unlike timings which are noise-tolerant).
    """

    suite: str
    name: str
    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    created_at: str = field(default_factory=_utc_now)
    env: dict = field(default_factory=env_fingerprint)
    stages: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    gauge_peaks: dict = field(default_factory=dict)
    timings_s: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "suite": self.suite,
            "name": self.name,
            "created_at": self.created_at,
            "env": self.env,
            "stages": self.stages,
            "counters": self.counters,
            "gauge_peaks": self.gauge_peaks,
            "timings_s": self.timings_s,
            "metrics": self.metrics,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "RunRecord":
        return cls(
            suite=str(doc.get("suite", "")),
            name=str(doc.get("name", "")),
            run_id=str(doc.get("run_id", "")),
            created_at=str(doc.get("created_at", "")),
            env=dict(doc.get("env", {})),
            stages=dict(doc.get("stages", {})),
            counters=dict(doc.get("counters", {})),
            gauge_peaks=dict(doc.get("gauge_peaks", {})),
            timings_s=dict(doc.get("timings_s", {})),
            metrics=dict(doc.get("metrics", {})),
            meta=dict(doc.get("meta", {})),
        )

    def total_stage_time(self) -> float:
        """Wall-clock summed over top-level stage totals."""
        return sum(v.get("total_s", 0.0) for v in self.stages.values())


def stage_summary(trace: Trace, *, now: float | None = None) -> dict:
    """Per-span-name aggregation of a trace: calls / total / self seconds.

    Still-open spans are closed at capture time (see
    :func:`repro.obs.export._effective_ends`) so long-running stages do
    not serialize as zero.
    """
    from repro.obs.export import _effective_ends

    ends, _ = _effective_ends(trace, now)
    durations = [max(ends[s.index] - s.start, 0.0) for s in trace.spans]
    child_time = [0.0] * len(trace.spans)
    for s in trace.spans:
        if s.parent is not None:
            child_time[s.parent] += durations[s.index]
    out: dict[str, dict] = {}
    for s in trace.spans:
        row = out.setdefault(s.name, {"calls": 0, "total_s": 0.0, "self_s": 0.0})
        row["calls"] += 1
        row["total_s"] += durations[s.index]
        row["self_s"] += max(durations[s.index] - child_time[s.index], 0.0)
    return out


def record_from_trace(
    suite: str,
    name: str,
    trace: Trace | None = None,
    *,
    metrics: dict | None = None,
    timings_s: dict | None = None,
    meta: dict | None = None,
) -> RunRecord:
    """Build a :class:`RunRecord` from a collected trace (or from scratch)."""
    record = RunRecord(suite=suite, name=name)
    if trace is not None:
        record.stages = stage_summary(trace)
        record.counters = dict(trace.counters)
        record.gauge_peaks = dict(trace.gauge_peaks)
    if metrics:
        record.metrics = dict(metrics)
    if timings_s:
        record.timings_s = {k: list(v) if isinstance(v, (list, tuple)) else [float(v)]
                            for k, v in timings_s.items()}
    if meta:
        record.meta = dict(meta)
    return record


def schedule_metrics(schedule) -> dict:
    """Standard schedule-quality metrics of one schedule.

    Makespan, utilization and idle area from :mod:`repro.core.stats`, plus
    the task/host counts — the deterministic numbers the regression gate
    hard-fails on.
    """
    from repro.core.stats import idle_area, utilization

    return {
        "makespan": float(schedule.makespan),
        "utilization": float(utilization(schedule)),
        "idle_area": float(idle_area(schedule)),
        "tasks": float(len(schedule)),
        "hosts": float(schedule.num_hosts),
    }


class RunLog:
    """Append-only JSONL run registry.

    Each :meth:`append` writes exactly one JSON line and flushes; nothing
    is ever rewritten, so concurrent appenders at worst interleave whole
    lines.  Reading skips lines that do not parse (counted in
    ``skipped``), so a torn write never takes the registry down.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.skipped = 0

    def append(self, record: RunRecord) -> RunRecord:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_json(), separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return record

    def records(self, *, suite: str | None = None,
                name: str | None = None) -> list[RunRecord]:
        """All parseable records, in append (= chronological) order."""
        if not self.path.exists():
            return []
        out: list[RunRecord] = []
        self.skipped = 0
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped += 1
                    continue
                if not isinstance(doc, dict):
                    self.skipped += 1
                    continue
                record = RunRecord.from_json(doc)
                if suite is not None and record.suite != suite:
                    continue
                if name is not None and record.name != name:
                    continue
                out.append(record)
        return out

    def latest(self, n: int = 1, *, suite: str | None = None,
               name: str | None = None) -> list[RunRecord]:
        """The ``n`` most recent matching records, oldest first."""
        records = self.records(suite=suite, name=name)
        return records[-n:] if n > 0 else []

    def suites(self) -> list[str]:
        """Distinct suite names, in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self.records():
            seen.setdefault(r.suite, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.records())
