"""Pipeline observability: spans, counters, gauges and trace exporters.

``repro.obs`` instruments the whole pipeline (parsers, schedulers, the
simulation engine, layout/LOD/encode, the CLI) with near-zero overhead
when disabled.  See :mod:`repro.obs.core` for collection,
:mod:`repro.obs.export` for the Chrome-trace / summary / Gantt exporters,
:mod:`repro.obs.log` for structured JSONL logging,
:mod:`repro.obs.runlog` / :mod:`repro.obs.bench` for the persistent
cross-run registry, :mod:`repro.obs.regress` for the regression gate and
:mod:`repro.obs.report` for the rendered dashboard, plus
``docs/observability.md`` for a walkthrough.
"""

from repro.obs.bench import BenchSuite, load_bench, time_min_of_k
from repro.obs.core import (
    Histogram,
    SpanRecord,
    Trace,
    add,
    capture,
    current_trace,
    disable,
    enable,
    gauge,
    is_enabled,
    observe,
    reset,
    span,
)
from repro.obs.export import (
    graft_trace_doc,
    merge_chrome_traces,
    summary_table,
    to_chrome_events,
    to_chrome_json,
    trace_from_doc,
    trace_to_doc,
    trace_to_schedule,
    validate_chrome_events,
)
from repro.obs.log import JsonlLogger, log_to
from repro.obs.regress import Regression, compare_bench, compare_runlog
from repro.obs.report import build_report, export_report, report_from_runlog
from repro.obs.runlog import (
    RunLog,
    RunRecord,
    env_fingerprint,
    record_from_trace,
    schedule_metrics,
    stage_summary,
)

__all__ = [
    "BenchSuite",
    "Histogram",
    "JsonlLogger",
    "Regression",
    "RunLog",
    "RunRecord",
    "SpanRecord",
    "Trace",
    "add",
    "build_report",
    "capture",
    "compare_bench",
    "compare_runlog",
    "current_trace",
    "disable",
    "enable",
    "env_fingerprint",
    "export_report",
    "gauge",
    "graft_trace_doc",
    "is_enabled",
    "load_bench",
    "log_to",
    "merge_chrome_traces",
    "observe",
    "record_from_trace",
    "report_from_runlog",
    "reset",
    "schedule_metrics",
    "span",
    "stage_summary",
    "summary_table",
    "time_min_of_k",
    "to_chrome_events",
    "to_chrome_json",
    "trace_from_doc",
    "trace_to_doc",
    "trace_to_schedule",
    "validate_chrome_events",
]
