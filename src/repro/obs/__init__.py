"""Pipeline observability: spans, counters, gauges and trace exporters.

``repro.obs`` instruments the whole pipeline (parsers, schedulers, the
simulation engine, layout/LOD/encode, the CLI) with near-zero overhead
when disabled.  See :mod:`repro.obs.core` for collection and
:mod:`repro.obs.export` for the Chrome-trace / summary / Gantt exporters,
and ``docs/observability.md`` for a walkthrough.
"""

from repro.obs.core import (
    SpanRecord,
    Trace,
    add,
    capture,
    current_trace,
    disable,
    enable,
    gauge,
    is_enabled,
    reset,
    span,
)
from repro.obs.export import (
    summary_table,
    to_chrome_events,
    to_chrome_json,
    trace_to_schedule,
    validate_chrome_events,
)

__all__ = [
    "SpanRecord",
    "Trace",
    "add",
    "capture",
    "current_trace",
    "disable",
    "enable",
    "gauge",
    "is_enabled",
    "reset",
    "span",
    "summary_table",
    "to_chrome_events",
    "to_chrome_json",
    "trace_to_schedule",
    "validate_chrome_events",
]
