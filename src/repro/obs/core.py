"""Zero-dependency observability core: spans, counters, gauges.

The package traces its own pipeline (``parse -> schedule -> simulate ->
layout -> encode``) the way Scully-Allison & Isaacs argue Gantt tooling
should be fed: as an execution trace.  Instrumentation points call
:class:`span` (a context manager that doubles as a decorator),
:func:`add` (counters) and :func:`gauge` (gauges); everything lands in a
per-run :class:`Trace`.

Observability is **disabled by default** and every instrumentation point
then reduces to a single module-attribute check — no allocation beyond
the (tiny) ``span`` object itself, no time stamps, no dictionary traffic
— so instrumented hot paths cost nothing measurable when tracing is off
(see ``benchmarks/bench_obs_overhead.py``).

Typical use::

    from repro import obs

    with obs.capture() as trace:
        run_pipeline()
    print(obs.summary_table(trace))

or long-running::

    obs.enable()
    ...
    trace = obs.current_trace()
"""

from __future__ import annotations

import functools
import math
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Histogram",
    "SpanRecord",
    "Trace",
    "span",
    "add",
    "gauge",
    "observe",
    "enable",
    "disable",
    "is_enabled",
    "current_trace",
    "reset",
    "capture",
]


class Histogram:
    """Bounded streaming histogram over fixed log-spaced buckets.

    Built for latency metrics that must survive millions of samples in a
    long-lived process: a fixed set of log-spaced bucket upper bounds
    (``buckets_per_decade`` per factor of ten between ``lo`` and ``hi``),
    one overflow bucket, plus running ``count`` / ``sum`` / ``min`` /
    ``max``.  Memory is constant, :meth:`observe` is O(log buckets), and
    every mutation happens under one lock so concurrent writers (HTTP
    threads, dispatchers) never tear a sample.

    ``percentile`` answers from the bucket cumulative counts: the value
    returned is the *upper bound* of the bucket holding that rank (the
    same upper-bound convention Prometheus ``le`` buckets use), clamped
    to the largest observed value for the overflow bucket.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, lo: float = 1e-4, hi: float = 1e3,
                 buckets_per_decade: int = 5):
        if not (0 < lo < hi) or not math.isfinite(hi):
            raise ValueError(f"need 0 < lo < hi finite, got [{lo}, {hi}]")
        if buckets_per_decade < 1:
            raise ValueError(f"need >= 1 bucket per decade, "
                             f"got {buckets_per_decade}")
        n = round(math.log10(hi / lo) * buckets_per_decade)
        bounds = [lo * 10.0 ** (i / buckets_per_decade) for i in range(n)]
        bounds.append(hi)  # exact top bound, no float drift
        self.bounds: list[float] = bounds
        self.counts: list[int] = [0] * (len(bounds) + 1)  # +1: overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample (values above ``hi`` land in the overflow)."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def snapshot(self) -> tuple[list[int], int, float, float, float]:
        """Consistent (counts, count, sum, min, max) under the lock."""
        with self._lock:
            return (list(self.counts), self.count, self.sum,
                    self.min, self.max)

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 < q <= 1)."""
        counts, count, _, _, largest = self.snapshot()
        if count == 0:
            return 0.0
        rank = max(1, math.ceil(q * count))
        seen = 0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                if index >= len(self.bounds):  # overflow bucket
                    return largest
                return self.bounds[index]
        return largest  # pragma: no cover - seen always reaches count

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending at (+inf, count)."""
        counts, count, _, _, _ = self.snapshot()
        out: list[tuple[float, int]] = []
        seen = 0
        for bound, bucket_count in zip(self.bounds, counts):
            seen += bucket_count
            out.append((bound, seen))
        out.append((math.inf, count))
        return out

    def to_json(self) -> dict:
        counts, count, total, low, high = self.snapshot()
        return {
            "bounds": list(self.bounds),
            "counts": counts,
            "count": count,
            "sum": total,
            "min": low if count else None,
            "max": high if count else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Histogram(count={self.count}, sum={self.sum:g}, "
                f"buckets={len(self.counts)})")


@dataclass(slots=True)
class SpanRecord:
    """One completed (or still-open) timed span.

    ``start``/``end`` are seconds relative to the owning trace's epoch;
    ``parent`` is an index into ``Trace.spans`` (``None`` for roots).
    An open span has ``end == -1.0``.
    """

    name: str
    start: float
    end: float
    depth: int
    index: int
    parent: int | None
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)


class Trace:
    """Spans (in start order), counters, gauges and histograms of one run.

    ``epoch`` is the monotonic (``perf_counter``) zero of all span
    timestamps; ``epoch_wall`` is the wall-clock (``time.time``) instant
    of that same zero, which is what lets traces captured in *different
    processes* be stitched onto one timeline (see
    :func:`repro.obs.export.trace_to_doc` and
    :mod:`repro.serve.tracing`).  ``trace_id`` names the request this
    trace belongs to; when set, every sink event carries it so log lines
    correlate across process boundaries.
    """

    def __init__(self, *, trace_id: str | None = None) -> None:
        self.epoch = time.perf_counter()
        self.epoch_wall = time.time()
        self.trace_id = trace_id
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.gauge_peaks: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._roots: list[int] = []
        self._children: list[list[int]] = []
        self._indexed = 0  # spans[:_indexed] are reflected in the index

    def child_index(self) -> list[list[int]]:
        """Per-span child lists, built in one incremental pass.

        ``child_index()[i]`` holds the indices of the spans whose parent is
        ``spans[i]``.  The index is extended lazily as spans are appended,
        so tree walks (``roots``/``children``, the exporters) stay O(n)
        overall instead of re-scanning the span list per node.
        """
        spans = self.spans
        if self._indexed > len(spans):  # spans list was replaced/truncated
            self._roots, self._children, self._indexed = [], [], 0
        if self._indexed < len(spans):
            self._children.extend([] for _ in range(len(spans) - self._indexed))
            for i in range(self._indexed, len(spans)):
                parent = spans[i].parent
                if parent is None:
                    self._roots.append(i)
                else:
                    self._children[parent].append(i)
            self._indexed = len(spans)
        return self._children

    def roots(self) -> list[SpanRecord]:
        """Top-level spans (pipeline stages)."""
        self.child_index()
        return [self.spans[i] for i in self._roots]

    def children(self, parent: SpanRecord) -> list[SpanRecord]:
        return [self.spans[i] for i in self.child_index()[parent.index]]

    def find(self, name: str) -> SpanRecord | None:
        """First span with the given name, or ``None``."""
        for s in self.spans:
            if s.name == name:
                return s
        return None

    def find_all(self, name: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def total_time(self) -> float:
        """Wall-clock covered by root spans."""
        return sum(s.duration for s in self.roots())

    def __len__(self) -> int:
        return len(self.spans)

    def histogram(self, name: str, **kwargs) -> Histogram:
        """The named histogram, created on first use."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(**kwargs)
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Trace({len(self.spans)} spans, {len(self.counters)} counters, "
                f"{len(self.gauges)} gauges)")


class _State:
    __slots__ = ("enabled", "trace", "stack", "sink")

    def __init__(self) -> None:
        self.enabled = False
        self.trace: Trace | None = None
        self.stack: list[int] = []
        # Optional event sink (structured logging, see repro.obs.log).  It
        # is only consulted on the *enabled* path, so the disabled fast
        # path is unchanged.  Receives plain dicts, one per event.
        self.sink = None


_state = _State()


def is_enabled() -> bool:
    """True when instrumentation points currently record."""
    return _state.enabled


def enable() -> Trace:
    """Turn observability on (keeping any trace already collected)."""
    _state.enabled = True
    if _state.trace is None:
        _state.trace = Trace()
    return _state.trace


def disable() -> None:
    """Turn observability off; instrumentation reverts to the no-op path."""
    _state.enabled = False


def current_trace() -> Trace | None:
    """The trace being collected (``None`` when never enabled)."""
    return _state.trace


def reset() -> Trace:
    """Drop collected data and start a fresh trace."""
    _state.trace = Trace()
    _state.stack = []
    return _state.trace


@contextmanager
def capture(*, trace_id: str | None = None):
    """Enable observability into a fresh trace for the duration of a block.

    Restores the previous state (enabled flag, trace, open-span stack) on
    exit, so captures nest and never clobber a long-running session.
    ``trace_id`` tags the captured trace (and every sink event emitted
    during the block) with a request identity — the cross-process
    correlation key of the render service.
    """
    prev_enabled, prev_trace, prev_stack = _state.enabled, _state.trace, _state.stack
    _state.enabled = True
    _state.trace = trace = Trace(trace_id=trace_id)
    _state.stack = []
    try:
        yield trace
    finally:
        _state.enabled = prev_enabled
        _state.trace = prev_trace
        _state.stack = prev_stack


class span:
    """Timed span: ``with obs.span("render.layout", mode="aligned"): ...``

    Also usable as a decorator::

        @obs.span("sched.heft")
        def heft_schedule(...): ...

    The enabled flag is checked at *entry* time, so decorating at import
    time while observability is off still records once it is enabled.
    When disabled, entering/exiting is a flag check and nothing more.
    """

    __slots__ = ("name", "attrs", "_record", "_trace")

    def __init__(self, name: str, **attrs: object):
        self.name = name
        self.attrs = attrs
        self._record: SpanRecord | None = None
        self._trace: Trace | None = None

    def __enter__(self) -> "span":
        if _state.enabled:
            trace = _state.trace
            assert trace is not None
            record = SpanRecord(
                self.name,
                time.perf_counter() - trace.epoch,
                -1.0,
                len(_state.stack),
                len(trace.spans),
                _state.stack[-1] if _state.stack else None,
                dict(self.attrs) if self.attrs else {},
            )
            trace.spans.append(record)
            _state.stack.append(record.index)
            self._record = record
            self._trace = trace
            if _state.sink is not None:
                event = {"event": "span_start", "name": record.name,
                         "span_id": record.index, "parent": record.parent,
                         "depth": record.depth, "ts": record.start,
                         "attrs": record.attrs}
                if trace.trace_id is not None:
                    event["trace_id"] = trace.trace_id
                _state.sink(event)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record, trace = self._record, self._trace
        if record is not None and trace is not None:
            record.end = time.perf_counter() - trace.epoch
            if exc_type is not None:
                record.attrs["error"] = exc_type.__name__
            stack = _state.stack
            if trace is _state.trace and record.index in stack:
                # pop our frame (and anything a leaked child left behind)
                del stack[stack.index(record.index):]
            if _state.sink is not None and trace is _state.trace:
                event = {"event": "span_end", "name": record.name,
                         "span_id": record.index, "parent": record.parent,
                         "depth": record.depth, "ts": record.end,
                         "dur": record.end - record.start,
                         "attrs": record.attrs}
                if trace.trace_id is not None:
                    event["trace_id"] = trace.trace_id
                _state.sink(event)
            self._record = None
            self._trace = None
        return False

    def set(self, **attrs: object) -> "span":
        """Attach attributes to the live span (no-op when not recording)."""
        if self._record is not None:
            self._record.attrs.update(attrs)
        return self

    def __call__(self, fn):
        name, attrs = self.name, self.attrs

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _state.enabled:
                return fn(*args, **kwargs)
            with span(name, **attrs):
                return fn(*args, **kwargs)

        return wrapper


def add(name: str, value: float = 1.0) -> None:
    """Increment a named counter (no-op when disabled)."""
    if _state.enabled:
        trace = _state.trace
        counters = trace.counters
        counters[name] = counters.get(name, 0.0) + value
        if _state.sink is not None:
            event = {"event": "counter", "name": name, "value": value,
                     "total": counters[name],
                     "span_id": _state.stack[-1] if _state.stack else None}
            if trace.trace_id is not None:
                event["trace_id"] = trace.trace_id
            _state.sink(event)


def gauge(name: str, value: float) -> None:
    """Record the current value of a gauge, tracking its peak."""
    if _state.enabled:
        trace = _state.trace
        trace.gauges[name] = value
        peak = trace.gauge_peaks.get(name)
        if peak is None or value > peak:
            trace.gauge_peaks[name] = value
        if _state.sink is not None:
            event = {"event": "gauge", "name": name, "value": value,
                     "peak": trace.gauge_peaks[name],
                     "span_id": _state.stack[-1] if _state.stack else None}
            if trace.trace_id is not None:
                event["trace_id"] = trace.trace_id
            _state.sink(event)


def observe(name: str, value: float) -> None:
    """Record one sample into a named trace histogram (no-op when disabled).

    The histogram is created on first use with the default latency
    buckets (100 µs .. 1000 s, five per decade); callers needing custom
    bounds pre-create it via ``current_trace().histogram(name, ...)``.
    """
    if _state.enabled:
        trace = _state.trace
        trace.histogram(name).observe(value)
        if _state.sink is not None:
            event = {"event": "observe", "name": name, "value": value,
                     "span_id": _state.stack[-1] if _state.stack else None}
            if trace.trace_id is not None:
                event["trace_id"] = trace.trace_id
            _state.sink(event)
