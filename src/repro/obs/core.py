"""Zero-dependency observability core: spans, counters, gauges.

The package traces its own pipeline (``parse -> schedule -> simulate ->
layout -> encode``) the way Scully-Allison & Isaacs argue Gantt tooling
should be fed: as an execution trace.  Instrumentation points call
:class:`span` (a context manager that doubles as a decorator),
:func:`add` (counters) and :func:`gauge` (gauges); everything lands in a
per-run :class:`Trace`.

Observability is **disabled by default** and every instrumentation point
then reduces to a single module-attribute check — no allocation beyond
the (tiny) ``span`` object itself, no time stamps, no dictionary traffic
— so instrumented hot paths cost nothing measurable when tracing is off
(see ``benchmarks/bench_obs_overhead.py``).

Typical use::

    from repro import obs

    with obs.capture() as trace:
        run_pipeline()
    print(obs.summary_table(trace))

or long-running::

    obs.enable()
    ...
    trace = obs.current_trace()
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "Trace",
    "span",
    "add",
    "gauge",
    "enable",
    "disable",
    "is_enabled",
    "current_trace",
    "reset",
    "capture",
]


@dataclass(slots=True)
class SpanRecord:
    """One completed (or still-open) timed span.

    ``start``/``end`` are seconds relative to the owning trace's epoch;
    ``parent`` is an index into ``Trace.spans`` (``None`` for roots).
    An open span has ``end == -1.0``.
    """

    name: str
    start: float
    end: float
    depth: int
    index: int
    parent: int | None
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)


class Trace:
    """Spans (in start order), counters and gauges of one observed run."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.gauge_peaks: dict[str, float] = {}
        self._roots: list[int] = []
        self._children: list[list[int]] = []
        self._indexed = 0  # spans[:_indexed] are reflected in the index

    def child_index(self) -> list[list[int]]:
        """Per-span child lists, built in one incremental pass.

        ``child_index()[i]`` holds the indices of the spans whose parent is
        ``spans[i]``.  The index is extended lazily as spans are appended,
        so tree walks (``roots``/``children``, the exporters) stay O(n)
        overall instead of re-scanning the span list per node.
        """
        spans = self.spans
        if self._indexed > len(spans):  # spans list was replaced/truncated
            self._roots, self._children, self._indexed = [], [], 0
        if self._indexed < len(spans):
            self._children.extend([] for _ in range(len(spans) - self._indexed))
            for i in range(self._indexed, len(spans)):
                parent = spans[i].parent
                if parent is None:
                    self._roots.append(i)
                else:
                    self._children[parent].append(i)
            self._indexed = len(spans)
        return self._children

    def roots(self) -> list[SpanRecord]:
        """Top-level spans (pipeline stages)."""
        self.child_index()
        return [self.spans[i] for i in self._roots]

    def children(self, parent: SpanRecord) -> list[SpanRecord]:
        return [self.spans[i] for i in self.child_index()[parent.index]]

    def find(self, name: str) -> SpanRecord | None:
        """First span with the given name, or ``None``."""
        for s in self.spans:
            if s.name == name:
                return s
        return None

    def find_all(self, name: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def total_time(self) -> float:
        """Wall-clock covered by root spans."""
        return sum(s.duration for s in self.roots())

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Trace({len(self.spans)} spans, {len(self.counters)} counters, "
                f"{len(self.gauges)} gauges)")


class _State:
    __slots__ = ("enabled", "trace", "stack", "sink")

    def __init__(self) -> None:
        self.enabled = False
        self.trace: Trace | None = None
        self.stack: list[int] = []
        # Optional event sink (structured logging, see repro.obs.log).  It
        # is only consulted on the *enabled* path, so the disabled fast
        # path is unchanged.  Receives plain dicts, one per event.
        self.sink = None


_state = _State()


def is_enabled() -> bool:
    """True when instrumentation points currently record."""
    return _state.enabled


def enable() -> Trace:
    """Turn observability on (keeping any trace already collected)."""
    _state.enabled = True
    if _state.trace is None:
        _state.trace = Trace()
    return _state.trace


def disable() -> None:
    """Turn observability off; instrumentation reverts to the no-op path."""
    _state.enabled = False


def current_trace() -> Trace | None:
    """The trace being collected (``None`` when never enabled)."""
    return _state.trace


def reset() -> Trace:
    """Drop collected data and start a fresh trace."""
    _state.trace = Trace()
    _state.stack = []
    return _state.trace


@contextmanager
def capture():
    """Enable observability into a fresh trace for the duration of a block.

    Restores the previous state (enabled flag, trace, open-span stack) on
    exit, so captures nest and never clobber a long-running session.
    """
    prev_enabled, prev_trace, prev_stack = _state.enabled, _state.trace, _state.stack
    _state.enabled = True
    _state.trace = trace = Trace()
    _state.stack = []
    try:
        yield trace
    finally:
        _state.enabled = prev_enabled
        _state.trace = prev_trace
        _state.stack = prev_stack


class span:
    """Timed span: ``with obs.span("render.layout", mode="aligned"): ...``

    Also usable as a decorator::

        @obs.span("sched.heft")
        def heft_schedule(...): ...

    The enabled flag is checked at *entry* time, so decorating at import
    time while observability is off still records once it is enabled.
    When disabled, entering/exiting is a flag check and nothing more.
    """

    __slots__ = ("name", "attrs", "_record", "_trace")

    def __init__(self, name: str, **attrs: object):
        self.name = name
        self.attrs = attrs
        self._record: SpanRecord | None = None
        self._trace: Trace | None = None

    def __enter__(self) -> "span":
        if _state.enabled:
            trace = _state.trace
            assert trace is not None
            record = SpanRecord(
                self.name,
                time.perf_counter() - trace.epoch,
                -1.0,
                len(_state.stack),
                len(trace.spans),
                _state.stack[-1] if _state.stack else None,
                dict(self.attrs) if self.attrs else {},
            )
            trace.spans.append(record)
            _state.stack.append(record.index)
            self._record = record
            self._trace = trace
            if _state.sink is not None:
                _state.sink({"event": "span_start", "name": record.name,
                             "span_id": record.index, "parent": record.parent,
                             "depth": record.depth, "ts": record.start,
                             "attrs": record.attrs})
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record, trace = self._record, self._trace
        if record is not None and trace is not None:
            record.end = time.perf_counter() - trace.epoch
            if exc_type is not None:
                record.attrs["error"] = exc_type.__name__
            stack = _state.stack
            if trace is _state.trace and record.index in stack:
                # pop our frame (and anything a leaked child left behind)
                del stack[stack.index(record.index):]
            if _state.sink is not None and trace is _state.trace:
                _state.sink({"event": "span_end", "name": record.name,
                             "span_id": record.index, "parent": record.parent,
                             "depth": record.depth, "ts": record.end,
                             "dur": record.end - record.start,
                             "attrs": record.attrs})
            self._record = None
            self._trace = None
        return False

    def set(self, **attrs: object) -> "span":
        """Attach attributes to the live span (no-op when not recording)."""
        if self._record is not None:
            self._record.attrs.update(attrs)
        return self

    def __call__(self, fn):
        name, attrs = self.name, self.attrs

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _state.enabled:
                return fn(*args, **kwargs)
            with span(name, **attrs):
                return fn(*args, **kwargs)

        return wrapper


def add(name: str, value: float = 1.0) -> None:
    """Increment a named counter (no-op when disabled)."""
    if _state.enabled:
        counters = _state.trace.counters
        counters[name] = counters.get(name, 0.0) + value
        if _state.sink is not None:
            _state.sink({"event": "counter", "name": name, "value": value,
                         "total": counters[name],
                         "span_id": _state.stack[-1] if _state.stack else None})


def gauge(name: str, value: float) -> None:
    """Record the current value of a gauge, tracking its peak."""
    if _state.enabled:
        trace = _state.trace
        trace.gauges[name] = value
        peak = trace.gauge_peaks.get(name)
        if peak is None or value > peak:
            trace.gauge_peaks[name] = value
        if _state.sink is not None:
            _state.sink({"event": "gauge", "name": name, "value": value,
                         "peak": trace.gauge_peaks[name],
                         "span_id": _state.stack[-1] if _state.stack else None})
