"""Benchmark result persistence: per-suite ``BENCH_<suite>.json`` files.

The benchmark suites used to print their numbers and throw them away;
this module is where they land instead.  A :class:`BenchSuite` collects
named entries — noisy wall-clock **timings** (kept as full min-of-k run
lists so the regression detector can compare bests) and deterministic
schedule-quality **metrics** (makespan, utilization, LOD cell counts, …)
— and writes them as one ``BENCH_<suite>.json`` document stamped with
the environment fingerprint.  Committed snapshots of these files form
the perf trajectory baselines under ``benchmarks/baselines/``;
``repro.obs.regress`` compares fresh files against them.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.runlog import (
    SCHEMA_VERSION,
    RunLog,
    RunRecord,
    _utc_now,
    env_fingerprint,
)

__all__ = ["BenchSuite", "load_bench", "time_min_of_k", "bench_filename"]


def bench_filename(suite: str) -> str:
    return f"BENCH_{suite}.json"


def time_min_of_k(fn, k: int = 3, *, warmup: int = 0) -> list[float]:
    """Wall-clock ``fn()`` ``k`` times (after ``warmup`` unmeasured calls).

    Returns all measurements; consumers take ``min()`` for the
    noise-tolerant comparison and keep the full list in the record so the
    spread stays inspectable.
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    for _ in range(warmup):
        fn()
    runs: list[float] = []
    for _ in range(k):
        t0 = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - t0)
    return runs


@dataclass(slots=True)
class BenchSuite:
    """Accumulates benchmark entries for one suite, then writes them."""

    suite: str
    entries: dict = field(default_factory=dict)

    def record(
        self,
        name: str,
        *,
        timings_s: dict | None = None,
        metrics: dict | None = None,
        rows: list | None = None,
    ) -> dict:
        """Add (or extend) one named entry.

        ``timings_s`` maps a label to one measurement or a run list (in
        seconds); ``metrics`` maps a label to a deterministic number;
        ``rows`` keeps the human-readable paper-vs-measured table lines
        alongside the machine-readable values.
        """
        entry = self.entries.setdefault(
            name, {"timings_s": {}, "metrics": {}})
        if timings_s:
            for key, value in timings_s.items():
                runs = list(value) if isinstance(value, (list, tuple)) \
                    else [float(value)]
                entry["timings_s"][key] = [float(v) for v in runs]
        if metrics:
            for key, value in metrics.items():
                entry["metrics"][key] = float(value)
        if rows:
            entry["rows"] = [[str(c) for c in row] for row in rows]
        return entry

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "suite": self.suite,
            "created_at": _utc_now(),
            "env": env_fingerprint(),
            "entries": self.entries,
        }

    def write(self, directory: str | Path, *,
              runlog: str | Path | None = None) -> Path:
        """Write ``BENCH_<suite>.json`` into ``directory``.

        With ``runlog`` given, every entry is also appended to that
        registry as one :class:`~repro.obs.runlog.RunRecord`, so the
        JSONL trajectory and the per-suite snapshot stay in sync.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / bench_filename(self.suite)
        path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
        if runlog is not None:
            log = RunLog(runlog)
            for name, entry in self.entries.items():
                log.append(RunRecord(
                    suite=self.suite, name=name,
                    timings_s=dict(entry.get("timings_s", {})),
                    metrics=dict(entry.get("metrics", {})),
                ))
        return path


def load_bench(path: str | Path) -> dict:
    """Read one ``BENCH_*.json`` document; raises ``ValueError`` on junk."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "suite" not in doc or "entries" not in doc:
        raise ValueError(f"{path}: not a BENCH document "
                         "(needs 'suite' and 'entries')")
    return doc
