"""Regression detection over the persisted perf trajectory.

Two comparison modes, one severity model:

* **BENCH vs. baseline** — :func:`compare_bench` diffs a freshly written
  ``BENCH_<suite>.json`` against a committed baseline snapshot.
* **Rolling run-log baseline** — :func:`compare_runlog` checks the latest
  record of each (suite, name) series against the best of the previous
  ``window`` records in the JSONL registry.

Timings are noisy, so they are compared min-of-k against min-of-k and
only *slowdowns* beyond ``time_threshold`` are flagged; with
``timing_warn_only`` they demote to warnings (the CI default — runner
hardware varies).  Schedule-quality metrics are deterministic, so *any*
relative drift beyond ``metric_threshold`` — makespan up, utilization
down, LOD cell count changed — is a hard failure.

CLI (exits non-zero on failures)::

    python -m repro.obs.regress CURRENT_DIR --baseline BASELINE_DIR
    python -m repro.obs.regress --runlog runs.jsonl --window 5
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.obs.bench import load_bench
from repro.obs.runlog import RunLog, RunRecord

__all__ = ["Regression", "compare_bench", "compare_runlog", "main"]

DEFAULT_TIME_THRESHOLD = 0.25
DEFAULT_METRIC_THRESHOLD = 0.05


@dataclass(frozen=True, slots=True)
class Regression:
    """One detected drift between a baseline and a current measurement."""

    suite: str
    entry: str
    kind: str  # "timing" | "metric" | "missing"
    key: str
    baseline: float
    current: float
    severity: str  # "fail" | "warn"

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def __str__(self) -> str:
        if self.kind == "missing":
            return (f"[{self.severity}] {self.suite}/{self.entry}: "
                    f"{self.key} present in baseline but missing now")
        arrow = f"{self.baseline:g} -> {self.current:g}"
        if self.kind == "timing":
            return (f"[{self.severity}] {self.suite}/{self.entry}: "
                    f"timing {self.key} {arrow} ({self.ratio:.2f}x slower)")
        return (f"[{self.severity}] {self.suite}/{self.entry}: "
                f"metric {self.key} drifted {arrow} "
                f"({(self.ratio - 1) * 100:+.1f}%)")


def _best(value) -> float:
    """Min-of-k: a run list collapses to its best measurement."""
    if isinstance(value, (list, tuple)):
        return min(float(v) for v in value) if value else 0.0
    return float(value)


def compare_bench(
    baseline: dict,
    current: dict,
    *,
    time_threshold: float = DEFAULT_TIME_THRESHOLD,
    metric_threshold: float = DEFAULT_METRIC_THRESHOLD,
    timing_warn_only: bool = False,
) -> list[Regression]:
    """Diff two BENCH documents (as loaded by :func:`load_bench`)."""
    suite = str(baseline.get("suite", "?"))
    out: list[Regression] = []
    timing_severity = "warn" if timing_warn_only else "fail"
    current_entries = current.get("entries", {})
    for entry_name, base_entry in baseline.get("entries", {}).items():
        cur_entry = current_entries.get(entry_name)
        if cur_entry is None:
            out.append(Regression(suite, entry_name, "missing", "entry",
                                  0.0, 0.0, "fail"))
            continue
        for key, base_runs in base_entry.get("timings_s", {}).items():
            cur_runs = cur_entry.get("timings_s", {}).get(key)
            if cur_runs is None:
                out.append(Regression(suite, entry_name, "missing", key,
                                      _best(base_runs), 0.0, timing_severity))
                continue
            base_best, cur_best = _best(base_runs), _best(cur_runs)
            if base_best > 0 and cur_best > base_best * (1 + time_threshold):
                out.append(Regression(suite, entry_name, "timing", key,
                                      base_best, cur_best, timing_severity))
        for key, base_value in base_entry.get("metrics", {}).items():
            cur_value = cur_entry.get("metrics", {}).get(key)
            if cur_value is None:
                out.append(Regression(suite, entry_name, "missing", key,
                                      float(base_value), 0.0, "fail"))
                continue
            base_value, cur_value = float(base_value), float(cur_value)
            scale = max(abs(base_value), 1e-12)
            if abs(cur_value - base_value) > metric_threshold * scale:
                out.append(Regression(suite, entry_name, "metric", key,
                                      base_value, cur_value, "fail"))
    return out


def compare_runlog(
    records: list[RunRecord],
    *,
    window: int = 5,
    time_threshold: float = DEFAULT_TIME_THRESHOLD,
    metric_threshold: float = DEFAULT_METRIC_THRESHOLD,
    timing_warn_only: bool = False,
) -> list[Regression]:
    """Latest record of each (suite, name) series vs. a rolling baseline.

    The baseline for a timing is the *best* value seen in the previous
    ``window`` records (min-of-k across runs and across records); for a
    metric it is the most recent previous value.  Series with no history
    are skipped — a registry with one record cannot regress.
    """
    series: dict[tuple[str, str], list[RunRecord]] = {}
    for r in records:
        series.setdefault((r.suite, r.name), []).append(r)

    out: list[Regression] = []
    timing_severity = "warn" if timing_warn_only else "fail"
    for (suite, name), runs in series.items():
        if len(runs) < 2:
            continue
        latest, history = runs[-1], runs[-1 - window:-1]

        def rolling_best(key: str, *, source: str) -> float | None:
            values = []
            for r in history:
                bucket = r.timings_s if source == "timings" else r.stages
                if source == "stages":
                    stage = bucket.get(key)
                    if stage is not None:
                        values.append(float(stage.get("total_s", 0.0)))
                else:
                    v = bucket.get(key)
                    if v is not None:
                        values.append(_best(v))
            return min(values) if values else None

        for key, runs_list in latest.timings_s.items():
            base = rolling_best(key, source="timings")
            if base is not None and base > 0 and \
                    _best(runs_list) > base * (1 + time_threshold):
                out.append(Regression(suite, name, "timing", key,
                                      base, _best(runs_list), timing_severity))
        for key, stage in latest.stages.items():
            base = rolling_best(key, source="stages")
            cur = float(stage.get("total_s", 0.0))
            if base is not None and base > 0 and \
                    cur > base * (1 + time_threshold):
                out.append(Regression(suite, name, "timing", f"stage:{key}",
                                      base, cur, timing_severity))
        for key, value in latest.metrics.items():
            prev = None
            for r in reversed(history):
                if key in r.metrics:
                    prev = float(r.metrics[key])
                    break
            if prev is None:
                continue
            scale = max(abs(prev), 1e-12)
            if abs(float(value) - prev) > metric_threshold * scale:
                out.append(Regression(suite, name, "metric", key,
                                      prev, float(value), "fail"))
    return out


def _bench_pairs(current_dir: Path, baseline_dir: Path) -> list[tuple[Path, Path]]:
    """Matching (baseline, current) BENCH files, keyed by file name."""
    pairs: list[tuple[Path, Path]] = []
    for base_path in sorted(baseline_dir.glob("BENCH_*.json")):
        cur_path = current_dir / base_path.name
        pairs.append((base_path, cur_path))
    return pairs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Detect perf/quality regressions in persisted run records.")
    parser.add_argument("current", nargs="?",
                        help="directory holding freshly written BENCH_*.json")
    parser.add_argument("--baseline",
                        help="directory holding committed baseline BENCH_*.json")
    parser.add_argument("--runlog", help="JSONL run registry to self-compare")
    parser.add_argument("--window", type=int, default=5,
                        help="rolling-baseline depth for --runlog (default 5)")
    parser.add_argument("--time-threshold", type=float,
                        default=DEFAULT_TIME_THRESHOLD,
                        help="relative slowdown tolerated before flagging "
                             "a timing (default 0.25 = 25%%)")
    parser.add_argument("--metric-threshold", type=float,
                        default=DEFAULT_METRIC_THRESHOLD,
                        help="relative drift tolerated on quality metrics "
                             "(default 0.05 = 5%%)")
    parser.add_argument("--timing-warn-only", action="store_true",
                        help="report timing regressions without failing "
                             "(metric drift still fails)")
    args = parser.parse_args(argv)

    if not args.runlog and not (args.current and args.baseline):
        parser.error("need CURRENT and --baseline, or --runlog")

    findings: list[Regression] = []
    compared = 0
    if args.current and args.baseline:
        current_dir, baseline_dir = Path(args.current), Path(args.baseline)
        if not baseline_dir.is_dir():
            print(f"error: baseline directory {baseline_dir} not found",
                  file=sys.stderr)
            return 2
        for base_path, cur_path in _bench_pairs(current_dir, baseline_dir):
            if not cur_path.exists():
                print(f"warning: no current results for {base_path.name} "
                      f"(expected {cur_path})", file=sys.stderr)
                continue
            compared += 1
            findings.extend(compare_bench(
                load_bench(base_path), load_bench(cur_path),
                time_threshold=args.time_threshold,
                metric_threshold=args.metric_threshold,
                timing_warn_only=args.timing_warn_only))
    if args.runlog:
        records = RunLog(args.runlog).records()
        compared += 1 if records else 0
        findings.extend(compare_runlog(
            records, window=args.window,
            time_threshold=args.time_threshold,
            metric_threshold=args.metric_threshold,
            timing_warn_only=args.timing_warn_only))

    if compared == 0:
        print("error: nothing to compare", file=sys.stderr)
        return 2
    for f in findings:
        print(str(f))
    failures = [f for f in findings if f.severity == "fail"]
    warnings = [f for f in findings if f.severity == "warn"]
    print(f"regress: {compared} comparison(s), {len(failures)} failure(s), "
          f"{len(warnings)} warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
