"""The ``repro report`` dashboard: the run registry, rendered.

Dog-fooding, one level up from :func:`~repro.obs.export.trace_to_schedule`:
where that function renders a *single* run's trace as a Gantt chart, this
module reads the persisted :class:`~repro.obs.runlog.RunLog` and lays the
*trajectory across runs* out as a dashboard — per-stage timing trends,
makespan, utilization/fairness and stretch/slowdown panels — built from
the same :class:`~repro.render.geometry.Drawing` primitives and serialized
by the same SVG/HTML/PNG/… backends as every schedule picture.

No new rendering machinery: panels are line charts made of ``Line`` /
``Rect`` / ``Text`` primitives, stacked with
:func:`~repro.render.compose.stack_drawings`.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.colormap import Color
from repro.errors import RenderError
from repro.obs.runlog import RunLog, RunRecord
from repro.render.geometry import Drawing, HAlign, Line, Rect, Text, VAlign
from repro.render.layout import nice_ticks
from repro.render.style import Style

__all__ = ["build_report", "export_report", "report_from_runlog"]

#: categorical palette for trend lines (colorbrewer-ish, readable on white)
_PALETTE = (
    Color(31, 119, 180), Color(255, 127, 14), Color(44, 160, 44),
    Color(214, 39, 40), Color(148, 103, 189), Color(140, 86, 75),
    Color(227, 119, 194), Color(127, 127, 127),
)

#: quality-metric panels: title, unit label, metric keys drawn together
_QUALITY_PANELS = (
    ("makespan", "seconds", ("makespan",)),
    ("utilization / fairness", "ratio", ("utilization", "jain_fairness")),
    ("stretch / slowdown", "x", ("max_stretch", "mean_stretch",
                                 "bounded_slowdown")),
)


def _timing_series(records: list[RunRecord], max_stages: int
                   ) -> dict[str, list[tuple[int, float]]]:
    """Per-stage/per-timing trend points: label -> [(run index, ms)].

    Stage totals and explicit benchmark timings (best of each run list)
    share the panel; the ``max_stages`` heaviest series survive.
    """
    series: dict[str, list[tuple[int, float]]] = {}
    for i, r in enumerate(records):
        for name, stage in r.stages.items():
            series.setdefault(name, []).append(
                (i, float(stage.get("total_s", 0.0)) * 1e3))
        for name, runs in r.timings_s.items():
            values = [float(v) for v in runs] if isinstance(runs, (list, tuple)) \
                else [float(runs)]
            if values:
                series.setdefault(name, []).append((i, min(values) * 1e3))
    ranked = sorted(series,
                    key=lambda n: -max(y for _, y in series[n]))
    return {name: series[name] for name in ranked[:max_stages]}


def _metric_series(records: list[RunRecord], keys: tuple[str, ...]
                   ) -> dict[str, list[tuple[int, float]]]:
    series: dict[str, list[tuple[int, float]]] = {}
    for i, r in enumerate(records):
        for key in keys:
            if key in r.metrics:
                series.setdefault(key, []).append((i, float(r.metrics[key])))
    return series


def _line_panel(
    title: str,
    unit: str,
    series: dict[str, list[tuple[int, float]]],
    n_runs: int,
    *,
    width: int,
    height: int,
    style: Style,
) -> Drawing:
    """One dashboard panel: a line chart of value-per-run-index series."""
    drawing = Drawing(width, height, style.background)
    x0 = style.margin_left
    top = style.margin_top + style.font_size_title
    w = width - x0 - style.margin_right
    h = height - top - style.margin_bottom
    if w <= 10 or h <= 10:
        raise RenderError(f"panel {width}x{height} too small for margins")

    drawing.add(Text(width / 2, 4, title, size=style.font_size_title,
                     color=style.axis_color, halign=HAlign.CENTER,
                     valign=VAlign.TOP))

    ymax = max((y for pts in series.values() for _, y in pts), default=1.0)
    ymax = ymax if ymax > 0 else 1.0
    xmax = max(n_runs - 1, 1)

    def px(i: float) -> float:
        return x0 + (i / xmax) * w

    def py(v: float) -> float:
        return top + h - (v / (ymax * 1.05)) * h

    for level in nice_ticks(0.0, ymax, 5):
        gy = py(level)
        if gy < top:
            continue
        drawing.add(Line(x0, gy, x0 + w, gy, style.grid_color, 0.5))
        drawing.add(Text(x0 - 6, gy, f"{level:g}", size=style.font_size_axes,
                         color=style.axis_color, halign=HAlign.RIGHT,
                         valign=VAlign.MIDDLE))
    for tick in nice_ticks(0.0, float(n_runs - 1), min(n_runs, 8)):
        if tick != int(tick) or not 0 <= tick <= n_runs - 1:
            continue
        gx = px(tick)
        drawing.add(Line(gx, top + h, gx, top + h + 4, style.axis_color, 1.0))
        drawing.add(Text(gx, top + h + 6, f"{int(tick)}",
                         size=style.font_size_axes, color=style.axis_color,
                         halign=HAlign.CENTER, valign=VAlign.TOP))

    for k, (label, points) in enumerate(series.items()):
        color = _PALETTE[k % len(_PALETTE)]
        for (i0, v0), (i1, v1) in zip(points, points[1:]):
            drawing.add(Line(px(i0), py(v0), px(i1), py(v1), color, 1.8))
        for i, v in points:  # markers keep single-run series visible
            drawing.add(Rect(px(i) - 2, py(v) - 2, 4, 4, fill=color,
                             ref=f"report:{title}:{label}:{i}"))

    drawing.add(Rect(x0, top, w, h, fill=None, stroke=style.axis_color))
    drawing.add(Text(x0 + w, top + h + 6, f"run index ({unit})",
                     size=style.font_size_axes, color=style.axis_color,
                     halign=HAlign.RIGHT, valign=VAlign.TOP))

    # legend along the bottom edge
    cx = x0
    sw = style.font_size_axes
    for k, label in enumerate(series):
        color = _PALETTE[k % len(_PALETTE)]
        drawing.add(Rect(cx, height - sw - 4, sw, sw, fill=color,
                         stroke=style.task_border))
        drawing.add(Text(cx + sw + 4, height - sw / 2 - 4, label,
                         size=style.font_size_axes, color=style.axis_color,
                         valign=VAlign.MIDDLE))
        cx += sw + 12 + len(label) * style.font_size_axes * 0.6
    return drawing


def build_report(
    records: list[RunRecord],
    *,
    width: int = 1000,
    panel_height: int = 260,
    max_stages: int = 6,
    title: str | None = None,
    style: Style | None = None,
) -> Drawing:
    """Lay the perf trajectory of a record series out as one dashboard.

    Always draws the per-stage timing-trend panel; quality panels
    (makespan, utilization/fairness, stretch/slowdown) appear when the
    records carry the corresponding metrics.
    """
    if not records:
        raise RenderError("cannot build a report from an empty run log")
    style = style or Style()
    n_runs = len(records)

    from repro.render.compose import stack_drawings

    panels: list[Drawing] = []

    header = Drawing(width, 28, style.background)
    suites = ", ".join(sorted({r.suite for r in records if r.suite}))
    span = f"{records[0].created_at} .. {records[-1].created_at}"
    header.add(Text(8, 4, title or f"repro run report — {suites or 'runs'}",
                    size=style.font_size_title, color=style.axis_color,
                    valign=VAlign.TOP))
    header.add(Text(8, 22, f"{n_runs} run(s), {span}",
                    size=style.font_size_meta, color=style.axis_color,
                    valign=VAlign.MIDDLE))
    panels.append(header)

    timing = _timing_series(records, max_stages)
    if timing:
        panels.append(_line_panel("stage / benchmark timings", "ms", timing,
                                  n_runs, width=width, height=panel_height,
                                  style=style))
    for panel_title, unit, keys in _QUALITY_PANELS:
        series = _metric_series(records, keys)
        if series:
            panels.append(_line_panel(panel_title, unit, series, n_runs,
                                      width=width, height=panel_height,
                                      style=style))
    if len(panels) == 1:
        raise RenderError("run log records carry no stage timings, "
                          "benchmark timings or metrics to plot")
    return stack_drawings(panels)


def export_report(records: list[RunRecord], path: str | Path,
                  format: str | None = None, **kwargs) -> Path:
    """Render a run-record dashboard straight to a file."""
    from repro.render.api import format_from_suffix, render_drawing

    path = Path(path)
    fmt = format or format_from_suffix(path)
    drawing = build_report(records, **kwargs)
    path.write_bytes(render_drawing(drawing, fmt))
    return path


def report_from_runlog(
    runlog_path: str | Path,
    out_path: str | Path,
    *,
    suite: str | None = None,
    name: str | None = None,
    last: int | None = None,
    format: str | None = None,
    **kwargs,
) -> tuple[Path, int]:
    """Read a JSONL registry, filter it, and export the dashboard.

    Returns the output path and the number of records plotted.
    """
    log = RunLog(runlog_path)
    records = log.records(suite=suite, name=name)
    if last is not None and last > 0:
        records = records[-last:]
    if not records:
        raise RenderError(f"no matching run records in {runlog_path}")
    export_report(records, out_path, format=format, **kwargs)
    return Path(out_path), len(records)
