"""Structured JSON logging wired into the span machinery.

One JSON object per line, one event per pipeline happening: spans opening
and closing, counters incrementing, gauges moving.  Events carry the
``span_id`` of the owning :class:`~repro.obs.core.SpanRecord` (its index
in ``Trace.spans``), so a log line and a Chrome-trace span from the same
run point at each other — grep the log, click the trace.

The sink rides the *enabled* instrumentation path only: with
observability off nothing is consulted and the disabled fast path is
byte-identical to before.  Typical use is the CLI's ``--log-json FILE``,
or programmatically::

    with obs.log_to("run.jsonl"):
        with obs.capture() as trace:
            run_pipeline()
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

from repro.obs import core as _core
from repro.obs.runlog import _utc_now

__all__ = ["JsonlLogger", "log_to", "set_sink", "get_sink"]


def set_sink(sink) -> None:
    """Install (or with ``None`` remove) the global event sink.

    The sink is called with one plain dict per event while observability
    is enabled.  Exactly one sink exists at a time; compose externally if
    you need fan-out.
    """
    _core._state.sink = sink


def get_sink():
    return _core._state.sink


class JsonlLogger:
    """Writes events as JSON lines to an open text stream.

    Every event is stamped with a wall-clock ``time`` (ISO 8601 UTC) and
    a monotonically increasing ``seq``; non-serializable attribute values
    are stringified rather than dropped.
    """

    def __init__(self, stream):
        self.stream = stream
        self.seq = 0

    def __call__(self, event: dict) -> None:
        doc = {"seq": self.seq, "time": _utc_now()}
        doc.update(event)
        self.seq += 1
        try:
            line = json.dumps(doc)
        except (TypeError, ValueError):
            line = json.dumps({k: str(v) for k, v in doc.items()})
        self.stream.write(line + "\n")

    def flush(self) -> None:
        self.stream.flush()


@contextmanager
def log_to(path: str | Path):
    """Route observability events into a JSONL file for a block.

    Restores the previous sink on exit, so logging contexts nest the way
    :func:`~repro.obs.core.capture` does.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    prev = get_sink()
    with open(path, "w", encoding="utf-8") as fh:
        logger = JsonlLogger(fh)
        set_sink(logger)
        try:
            yield logger
        finally:
            set_sink(prev)
            logger.flush()
