"""Trace exporters: Chrome trace-event JSON, text summary, dog-food Gantt.

Four ways out of a :class:`~repro.obs.core.Trace`:

* :func:`to_chrome_json` — the Chrome trace-event format (B/E duration
  pairs plus C counter samples), loadable in ``chrome://tracing`` and
  Perfetto.  :func:`validate_chrome_events` checks the structural
  invariants (sorted ``ts``, stack-matched B/E pairs) and is what the CI
  smoke job runs against a real CLI render.
  :func:`merge_chrome_traces` folds several per-request trace documents
  into one timeline (one ``tid`` per request).
* :func:`summary_table` — a plain-text per-span aggregation with
  counters, gauges and histograms, for ``--stats``.
* :func:`trace_to_schedule` — the dog-food path: the span tree becomes a
  :class:`~repro.core.model.Schedule` (spans as tasks, pipeline stages as
  cluster bands, nesting depth as host rows), so the tool renders its own
  execution as a Jedule Gantt chart.
* :func:`trace_to_doc` / :func:`trace_from_doc` — the plain-JSON *wire
  form* of a trace, anchored to the wall clock so segments captured in
  another process can be shipped home and grafted
  (:func:`graft_trace_doc`) onto the local timeline.  This is how the
  render service's workers return their span segments
  (:mod:`repro.serve.tracing` stitches them).
"""

from __future__ import annotations

import json
import time

from repro.core.model import Schedule
from repro.errors import ScheduleError
from repro.obs.core import SpanRecord, Trace

__all__ = [
    "to_chrome_events",
    "to_chrome_json",
    "merge_chrome_traces",
    "validate_chrome_events",
    "summary_table",
    "trace_to_schedule",
    "trace_to_doc",
    "trace_from_doc",
    "graft_trace_doc",
]

_PID = 1
_TID = 1


def _effective_ends(trace: Trace, now: float | None = None
                    ) -> tuple[list[float], int]:
    """Per-span end times, closing still-open spans at capture time.

    A span that is still running when the trace is exported has
    ``end == -1.0``; reporting it as zero-duration would hide exactly the
    span most worth looking at.  Open spans are closed at ``now`` (seconds
    relative to the trace epoch, defaulting to the wall clock at the time
    of the call) and counted, so exporters can mark them as open.

    ``now`` is clamped to the latest timestamp already in the trace: an
    open span encloses everything recorded after it, so closing it any
    earlier (stale ``now``, clock skew) would un-sort the event stream.
    """
    ends: list[float] = []
    open_count = 0
    for s in trace.spans:
        if s.end < s.start:  # still open
            open_count += 1
            if now is None:
                now = time.perf_counter() - trace.epoch
            if open_count == 1:
                for x in trace.spans:
                    now = max(now, x.start, x.end)
            ends.append(max(now, s.start))
        else:
            ends.append(s.end)
    return ends, open_count


def _span_tids(trace: Trace) -> list[int]:
    """Chrome ``tid`` per span: a ``tid`` attribute starts a lane, children
    inherit it.  Ordinary single-timeline traces all map to ``_TID``;
    grafted segments from concurrent workers (``graft_trace_doc`` with
    ``tid=``) overlap in time and must not share a B/E stack."""
    tids: list[int] = []
    for s in trace.spans:
        tid = None
        if "tid" in s.attrs:
            try:
                tid = int(s.attrs["tid"])
            except (TypeError, ValueError):
                tid = None
        if tid is None:
            tid = tids[s.parent] if s.parent is not None else _TID
        tids.append(tid)
    return tids


def to_chrome_events(trace: Trace, *, now: float | None = None) -> list[dict]:
    """Chrome trace-event dicts: B/E pairs per span, C samples for counters.

    Events come out sorted by ``ts``; at equal timestamps ends precede
    begins (a stage may end exactly where the next starts) and nesting
    order is preserved (outer B first, inner E first).  Spans carrying a
    ``tid`` attribute (and their descendants) are emitted on that lane,
    so overlapping segments grafted from concurrent worker processes keep
    per-lane B/E nesting intact.
    """
    # Each lane's span sublist is a DFS of a properly nested tree
    # (single-threaded execution), so the correct B/E interleaving falls
    # out of a stack walk: before opening a span, close every open span
    # that is not its ancestor.  This stays correct for zero-duration and
    # still-open spans, where timestamp sorting alone cannot order B
    # before E.  Multi-lane traces are merged with a stable ts sort,
    # which preserves each lane's internal order.
    spans = trace.spans
    ends, _ = _effective_ends(trace, now)
    tids = _span_tids(trace)
    lanes: dict[int, list] = {}
    for s in spans:
        lanes.setdefault(tids[s.index], []).append(s)

    events: list[dict] = []

    def emit_lane(tid: int, lane_spans: list) -> None:
        stack: list[int] = []

        def emit_end(s) -> None:
            events.append({"name": s.name, "ph": "E",
                           "ts": ends[s.index] * 1e6, "pid": _PID,
                           "tid": tid})

        for s in lane_spans:
            while stack and stack[-1] != s.parent:
                emit_end(spans[stack.pop()])
            begin = {"name": s.name, "cat": s.name.split(".")[0], "ph": "B",
                     "ts": s.start * 1e6, "pid": _PID, "tid": tid}
            if s.attrs or s.end < s.start:
                begin["args"] = {k: str(v) for k, v in s.attrs.items()}
                if s.end < s.start:  # closed at capture time, flag it
                    begin["args"]["open"] = "true"
            events.append(begin)
            stack.append(s.index)
        while stack:
            emit_end(spans[stack.pop()])

    for tid in sorted(lanes):
        emit_lane(tid, lanes[tid])
    if len(lanes) > 1:
        events.sort(key=lambda ev: ev["ts"])  # stable: lane order survives
    end_ts = max((e["ts"] for e in events), default=0.0)
    for name in sorted(trace.counters):
        events.append({"name": name, "ph": "C", "ts": end_ts, "pid": _PID,
                       "tid": _TID, "args": {name: trace.counters[name]}})
    for name in sorted(trace.gauge_peaks):
        events.append({"name": name, "ph": "C", "ts": end_ts, "pid": _PID,
                       "tid": _TID, "args": {name: trace.gauge_peaks[name]}})
    return events


def to_chrome_json(trace: Trace, *, indent: int | None = None) -> str:
    """Serialize a trace as a Chrome trace-event JSON document."""
    doc = {"traceEvents": to_chrome_events(trace), "displayTimeUnit": "ms"}
    return json.dumps(doc, indent=indent) + "\n"


def merge_chrome_traces(docs: list[dict]) -> dict:
    """Merge Chrome trace documents into one, each on its own ``tid``.

    Overlapping requests cannot share a ``tid`` — their B/E pairs would
    interleave — so document ``i`` gets ``tid i+1``.  Events are then
    stable-sorted by ``ts``: per-tid event order is preserved (each input
    stream is already internally ordered) while the merged stream
    satisfies the global sorted-``ts`` invariant
    :func:`validate_chrome_events` checks.
    """
    events: list[dict] = []
    for tid, doc in enumerate(docs, start=1):
        for ev in doc.get("traceEvents", []):
            events.append({**ev, "tid": tid})
    events.sort(key=lambda ev: ev.get("ts", 0.0))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_events(events: list[dict]) -> None:
    """Check trace-event structural invariants; raises ``ValueError``.

    Enforced: every event has name/ph/ts/pid/tid, ``ts`` is monotonically
    non-decreasing, and B/E events match like balanced parentheses per
    (pid, tid) with E names matching the innermost open B.
    """
    last_ts = float("-inf")
    stacks: dict[tuple, list[str]] = {}
    for i, ev in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {i} lacks {key!r}: {ev}")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event {i}: non-numeric ts {ts!r}")
        if ts < last_ts:
            raise ValueError(f"event {i}: ts {ts} after {last_ts} (unsorted)")
        last_ts = ts
        ph = ev["ph"]
        if ph not in ("B", "E", "C", "X", "M", "i"):
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        stack = stacks.setdefault((ev["pid"], ev["tid"]), [])
        if ph == "B":
            stack.append(ev["name"])
        elif ph == "E":
            if not stack:
                raise ValueError(f"event {i}: E {ev['name']!r} without open B")
            open_name = stack.pop()
            if open_name != ev["name"]:
                raise ValueError(
                    f"event {i}: E {ev['name']!r} closes B {open_name!r}")
    for key, stack in stacks.items():
        if stack:
            raise ValueError(f"unclosed B events on {key}: {stack}")


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:10.3f}"


def summary_table(trace: Trace, *, now: float | None = None) -> str:
    """Plain-text aggregation: per-name span timings, counters, gauges.

    Spans still open at capture time are closed at ``now`` (so their time
    shows up instead of reading as zero) and flagged in a trailing note.
    """
    ends, open_count = _effective_ends(trace, now)
    durations = [max(ends[s.index] - s.start, 0.0) for s in trace.spans]
    child_time = [0.0] * len(trace.spans)
    for s in trace.spans:
        if s.parent is not None:
            child_time[s.parent] += durations[s.index]

    order: list[str] = []
    agg: dict[str, list[float]] = {}  # name -> [calls, total, self]
    for s in trace.spans:
        if s.name not in agg:
            order.append(s.name)
            agg[s.name] = [0.0, 0.0, 0.0]
        row = agg[s.name]
        row[0] += 1
        row[1] += durations[s.index]
        row[2] += durations[s.index] - child_time[s.index]

    lines: list[str] = []
    if order:
        width = max(len(n) for n in order)
        width = max(width, len("span"))
        lines.append(f"{'span':<{width}}  {'calls':>6}  {'total ms':>10}  {'self ms':>10}")
        for name in order:
            calls, total, self_t = agg[name]
            lines.append(f"{name:<{width}}  {int(calls):>6}  "
                         f"{_fmt_ms(total)}  {_fmt_ms(max(self_t, 0.0))}")
    if trace.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(trace.counters):
            lines.append(f"  {name} = {trace.counters[name]:g}")
    if trace.gauges:
        lines.append("")
        lines.append("gauges (last / peak):")
        for name in sorted(trace.gauges):
            lines.append(f"  {name} = {trace.gauges[name]:g} / "
                         f"{trace.gauge_peaks.get(name, trace.gauges[name]):g}")
    if trace.histograms:
        lines.append("")
        lines.append("histograms (count / mean / p50 / p95 / p99):")
        for name in sorted(trace.histograms):
            hist = trace.histograms[name]
            lines.append(
                f"  {name} = {hist.count} / {hist.mean:g} / "
                f"{hist.percentile(0.50):g} / {hist.percentile(0.95):g} / "
                f"{hist.percentile(0.99):g}")
    if open_count:
        lines.append("")
        lines.append(f"note: {open_count} span(s) still open at capture "
                     "(closed at capture time above)")
    if not lines:
        lines.append("(empty trace)")
    return "\n".join(lines) + "\n"


def trace_to_schedule(trace: Trace, *, name: str = "pipeline trace") -> Schedule:
    """Dog-food conversion: render the tool's own execution as a Gantt.

    Each top-level span is a *stage* and becomes a cluster band; nesting
    depth inside the stage selects the host row; every span becomes one
    task typed by its name.  Times are shifted so the trace starts at 0.
    The result feeds straight into the normal render pipeline.
    """
    if not trace.spans:
        raise ScheduleError("cannot build a Gantt from an empty trace")

    ends, _ = _effective_ends(trace)
    stage_of: list[str] = []
    for s in trace.spans:
        stage_of.append(s.name if s.parent is None else stage_of[s.parent])

    stage_order: list[str] = []
    stage_depth: dict[str, int] = {}
    for s, stage in zip(trace.spans, stage_of):
        if stage not in stage_depth:
            stage_order.append(stage)
            stage_depth[stage] = 0
        stage_depth[stage] = max(stage_depth[stage], s.depth)

    t0 = min(s.start for s in trace.spans)
    schedule = Schedule(meta={"source": "repro.obs", "trace": name,
                              "units": "seconds"})
    for i, stage in enumerate(stage_order):
        schedule.new_cluster(f"s{i}", stage_depth[stage] + 1, stage)
    cluster_of = {stage: f"s{i}" for i, stage in enumerate(stage_order)}

    for s, stage in zip(trace.spans, stage_of):
        end = ends[s.index]
        meta = {k: str(v) for k, v in s.attrs.items()}
        meta["duration_ms"] = f"{(end - s.start) * 1e3:.3f}"
        if s.end < s.start:
            meta["open"] = "true"
        schedule.new_task(
            f"{s.index}:{s.name}", s.name, s.start - t0, end - t0,
            cluster=cluster_of[stage], host_start=s.depth, host_nb=1,
            meta=meta,
        )
    return schedule


# --------------------------------------------------------- trace wire form
#: Schema tag of the trace wire form (bump on incompatible change).
TRACE_DOC_VERSION = 1


def trace_to_doc(trace: Trace, *, now: float | None = None) -> dict:
    """The plain-JSON wire form of a trace.

    Spans serialize as compact ``[name, start, end, depth, parent,
    attrs]`` rows (indices are implicit in row order); attribute values
    are stringified so arbitrary objects never poison the JSON encoder.
    ``wall0`` anchors the trace's time zero to the wall clock, which is
    what lets a receiving process place these spans on *its* timeline
    (:func:`graft_trace_doc`).  Still-open spans are closed at capture
    time, exactly like the Chrome exporter does.
    """
    ends, _ = _effective_ends(trace, now)
    spans = [[s.name, s.start, ends[s.index], s.depth, s.parent,
              {k: str(v) for k, v in s.attrs.items()}]
             for s in trace.spans]
    doc: dict[str, object] = {
        "version": TRACE_DOC_VERSION,
        "wall0": trace.epoch_wall,
        "spans": spans,
    }
    if trace.trace_id is not None:
        doc["trace_id"] = trace.trace_id
    if trace.counters:
        doc["counters"] = dict(trace.counters)
    if trace.gauge_peaks:
        doc["gauge_peaks"] = dict(trace.gauge_peaks)
    return doc


def trace_from_doc(doc: dict) -> Trace:
    """Rebuild a :class:`Trace` from its wire form.

    Raises ``ValueError`` on structurally broken documents (wrong span
    row shape, dangling parent index) so corrupted segments surface at
    the stitching boundary instead of deep inside an exporter.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"trace doc must be an object, "
                         f"got {type(doc).__name__}")
    rows = doc.get("spans", [])
    if not isinstance(rows, list):
        raise ValueError("trace doc 'spans' must be a list")
    trace = Trace(trace_id=doc.get("trace_id"))
    trace.epoch_wall = float(doc.get("wall0", trace.epoch_wall))
    for index, row in enumerate(rows):
        if not isinstance(row, (list, tuple)) or len(row) != 6:
            raise ValueError(f"span row {index} malformed: {row!r}")
        name, start, end, depth, parent, attrs = row
        if parent is not None and not (0 <= int(parent) < index):
            raise ValueError(f"span row {index} has dangling parent "
                             f"{parent!r}")
        trace.spans.append(SpanRecord(
            str(name), float(start), float(end), int(depth), index,
            None if parent is None else int(parent),
            dict(attrs) if isinstance(attrs, dict) else {}))
    for key, value in (doc.get("counters") or {}).items():
        trace.counters[str(key)] = float(value)
    for key, value in (doc.get("gauge_peaks") or {}).items():
        trace.gauge_peaks[str(key)] = float(value)
    return trace


def graft_trace_doc(trace: Trace, doc: dict, *, parent: int | None = None,
                    tid: int | None = None) -> list[SpanRecord]:
    """Splice a wire-form segment into ``trace`` on the wall-clock timeline.

    The segment's spans are re-indexed, shifted by the difference between
    the two traces' wall epochs, and re-parented: segment roots become
    children of ``parent`` (an index into ``trace.spans``) or roots of
    ``trace`` when ``parent`` is None.  Counters merge additively.
    ``tid`` tags the segment roots with a Chrome lane id — required when
    several time-overlapping segments (concurrent workers) land in one
    trace, so the Chrome exporter keeps their B/E stacks apart.
    Returns the appended records (segment order preserved).
    """
    segment = trace_from_doc(doc)
    offset = segment.epoch_wall - trace.epoch_wall
    base = len(trace.spans)
    base_depth = 0
    if parent is not None:
        if not 0 <= parent < base:
            raise ValueError(f"graft parent {parent} out of range")
        base_depth = trace.spans[parent].depth + 1
    grafted: list[SpanRecord] = []
    for s in segment.spans:
        attrs = dict(s.attrs)
        if tid is not None and s.parent is None:
            attrs["tid"] = tid
        record = SpanRecord(
            s.name, s.start + offset, s.end + offset,
            s.depth + base_depth, base + s.index,
            parent if s.parent is None else base + s.parent,
            attrs)
        trace.spans.append(record)
        grafted.append(record)
    for key, value in segment.counters.items():
        trace.counters[key] = trace.counters.get(key, 0.0) + value
    for key, value in segment.gauge_peaks.items():
        peak = trace.gauge_peaks.get(key)
        if peak is None or value > peak:
            trace.gauge_peaks[key] = value
    return grafted
