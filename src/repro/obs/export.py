"""Trace exporters: Chrome trace-event JSON, text summary, dog-food Gantt.

Three ways out of a :class:`~repro.obs.core.Trace`:

* :func:`to_chrome_json` — the Chrome trace-event format (B/E duration
  pairs plus C counter samples), loadable in ``chrome://tracing`` and
  Perfetto.  :func:`validate_chrome_events` checks the structural
  invariants (sorted ``ts``, stack-matched B/E pairs) and is what the CI
  smoke job runs against a real CLI render.
* :func:`summary_table` — a plain-text per-span aggregation with
  counters and gauges, for ``--stats``.
* :func:`trace_to_schedule` — the dog-food path: the span tree becomes a
  :class:`~repro.core.model.Schedule` (spans as tasks, pipeline stages as
  cluster bands, nesting depth as host rows), so the tool renders its own
  execution as a Jedule Gantt chart.
"""

from __future__ import annotations

import json
import time

from repro.core.model import Schedule
from repro.errors import ScheduleError
from repro.obs.core import Trace

__all__ = [
    "to_chrome_events",
    "to_chrome_json",
    "validate_chrome_events",
    "summary_table",
    "trace_to_schedule",
]

_PID = 1
_TID = 1


def _effective_ends(trace: Trace, now: float | None = None
                    ) -> tuple[list[float], int]:
    """Per-span end times, closing still-open spans at capture time.

    A span that is still running when the trace is exported has
    ``end == -1.0``; reporting it as zero-duration would hide exactly the
    span most worth looking at.  Open spans are closed at ``now`` (seconds
    relative to the trace epoch, defaulting to the wall clock at the time
    of the call) and counted, so exporters can mark them as open.

    ``now`` is clamped to the latest timestamp already in the trace: an
    open span encloses everything recorded after it, so closing it any
    earlier (stale ``now``, clock skew) would un-sort the event stream.
    """
    ends: list[float] = []
    open_count = 0
    for s in trace.spans:
        if s.end < s.start:  # still open
            open_count += 1
            if now is None:
                now = time.perf_counter() - trace.epoch
            if open_count == 1:
                for x in trace.spans:
                    now = max(now, x.start, x.end)
            ends.append(max(now, s.start))
        else:
            ends.append(s.end)
    return ends, open_count


def to_chrome_events(trace: Trace, *, now: float | None = None) -> list[dict]:
    """Chrome trace-event dicts: B/E pairs per span, C samples for counters.

    Events come out sorted by ``ts``; at equal timestamps ends precede
    begins (a stage may end exactly where the next starts) and nesting
    order is preserved (outer B first, inner E first).
    """
    # The span list is a DFS of a properly nested tree (single-threaded
    # execution), so the correct B/E interleaving falls out of a stack
    # walk: before opening a span, close every open span that is not its
    # ancestor.  This stays correct for zero-duration and still-open
    # spans, where timestamp sorting alone cannot order B before E.
    events: list[dict] = []
    spans = trace.spans
    ends, _ = _effective_ends(trace, now)
    stack: list[int] = []

    def emit_end(s) -> None:
        events.append({"name": s.name, "ph": "E", "ts": ends[s.index] * 1e6,
                       "pid": _PID, "tid": _TID})

    for s in spans:
        while stack and stack[-1] != s.parent:
            emit_end(spans[stack.pop()])
        begin = {"name": s.name, "cat": s.name.split(".")[0], "ph": "B",
                 "ts": s.start * 1e6, "pid": _PID, "tid": _TID}
        if s.attrs or s.end < s.start:
            begin["args"] = {k: str(v) for k, v in s.attrs.items()}
            if s.end < s.start:  # closed at capture time, flag it
                begin["args"]["open"] = "true"
        events.append(begin)
        stack.append(s.index)
    while stack:
        emit_end(spans[stack.pop()])
    end_ts = max((e["ts"] for e in events), default=0.0)
    for name in sorted(trace.counters):
        events.append({"name": name, "ph": "C", "ts": end_ts, "pid": _PID,
                       "tid": _TID, "args": {name: trace.counters[name]}})
    for name in sorted(trace.gauge_peaks):
        events.append({"name": name, "ph": "C", "ts": end_ts, "pid": _PID,
                       "tid": _TID, "args": {name: trace.gauge_peaks[name]}})
    return events


def to_chrome_json(trace: Trace, *, indent: int | None = None) -> str:
    """Serialize a trace as a Chrome trace-event JSON document."""
    doc = {"traceEvents": to_chrome_events(trace), "displayTimeUnit": "ms"}
    return json.dumps(doc, indent=indent) + "\n"


def validate_chrome_events(events: list[dict]) -> None:
    """Check trace-event structural invariants; raises ``ValueError``.

    Enforced: every event has name/ph/ts/pid/tid, ``ts`` is monotonically
    non-decreasing, and B/E events match like balanced parentheses per
    (pid, tid) with E names matching the innermost open B.
    """
    last_ts = float("-inf")
    stacks: dict[tuple, list[str]] = {}
    for i, ev in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {i} lacks {key!r}: {ev}")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event {i}: non-numeric ts {ts!r}")
        if ts < last_ts:
            raise ValueError(f"event {i}: ts {ts} after {last_ts} (unsorted)")
        last_ts = ts
        ph = ev["ph"]
        if ph not in ("B", "E", "C", "X", "M", "i"):
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        stack = stacks.setdefault((ev["pid"], ev["tid"]), [])
        if ph == "B":
            stack.append(ev["name"])
        elif ph == "E":
            if not stack:
                raise ValueError(f"event {i}: E {ev['name']!r} without open B")
            open_name = stack.pop()
            if open_name != ev["name"]:
                raise ValueError(
                    f"event {i}: E {ev['name']!r} closes B {open_name!r}")
    for key, stack in stacks.items():
        if stack:
            raise ValueError(f"unclosed B events on {key}: {stack}")


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:10.3f}"


def summary_table(trace: Trace, *, now: float | None = None) -> str:
    """Plain-text aggregation: per-name span timings, counters, gauges.

    Spans still open at capture time are closed at ``now`` (so their time
    shows up instead of reading as zero) and flagged in a trailing note.
    """
    ends, open_count = _effective_ends(trace, now)
    durations = [max(ends[s.index] - s.start, 0.0) for s in trace.spans]
    child_time = [0.0] * len(trace.spans)
    for s in trace.spans:
        if s.parent is not None:
            child_time[s.parent] += durations[s.index]

    order: list[str] = []
    agg: dict[str, list[float]] = {}  # name -> [calls, total, self]
    for s in trace.spans:
        if s.name not in agg:
            order.append(s.name)
            agg[s.name] = [0.0, 0.0, 0.0]
        row = agg[s.name]
        row[0] += 1
        row[1] += durations[s.index]
        row[2] += durations[s.index] - child_time[s.index]

    lines: list[str] = []
    if order:
        width = max(len(n) for n in order)
        width = max(width, len("span"))
        lines.append(f"{'span':<{width}}  {'calls':>6}  {'total ms':>10}  {'self ms':>10}")
        for name in order:
            calls, total, self_t = agg[name]
            lines.append(f"{name:<{width}}  {int(calls):>6}  "
                         f"{_fmt_ms(total)}  {_fmt_ms(max(self_t, 0.0))}")
    if trace.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(trace.counters):
            lines.append(f"  {name} = {trace.counters[name]:g}")
    if trace.gauges:
        lines.append("")
        lines.append("gauges (last / peak):")
        for name in sorted(trace.gauges):
            lines.append(f"  {name} = {trace.gauges[name]:g} / "
                         f"{trace.gauge_peaks.get(name, trace.gauges[name]):g}")
    if open_count:
        lines.append("")
        lines.append(f"note: {open_count} span(s) still open at capture "
                     "(closed at capture time above)")
    if not lines:
        lines.append("(empty trace)")
    return "\n".join(lines) + "\n"


def trace_to_schedule(trace: Trace, *, name: str = "pipeline trace") -> Schedule:
    """Dog-food conversion: render the tool's own execution as a Gantt.

    Each top-level span is a *stage* and becomes a cluster band; nesting
    depth inside the stage selects the host row; every span becomes one
    task typed by its name.  Times are shifted so the trace starts at 0.
    The result feeds straight into the normal render pipeline.
    """
    if not trace.spans:
        raise ScheduleError("cannot build a Gantt from an empty trace")

    ends, _ = _effective_ends(trace)
    stage_of: list[str] = []
    for s in trace.spans:
        stage_of.append(s.name if s.parent is None else stage_of[s.parent])

    stage_order: list[str] = []
    stage_depth: dict[str, int] = {}
    for s, stage in zip(trace.spans, stage_of):
        if stage not in stage_depth:
            stage_order.append(stage)
            stage_depth[stage] = 0
        stage_depth[stage] = max(stage_depth[stage], s.depth)

    t0 = min(s.start for s in trace.spans)
    schedule = Schedule(meta={"source": "repro.obs", "trace": name,
                              "units": "seconds"})
    for i, stage in enumerate(stage_order):
        schedule.new_cluster(f"s{i}", stage_depth[stage] + 1, stage)
    cluster_of = {stage: f"s{i}" for i, stage in enumerate(stage_order)}

    for s, stage in zip(trace.spans, stage_of):
        end = ends[s.index]
        meta = {k: str(v) for k, v in s.attrs.items()}
        meta["duration_ms"] = f"{(end - s.start) * 1e3:.3f}"
        if s.end < s.start:
            meta["open"] = "true"
        schedule.new_task(
            f"{s.index}:{s.name}", s.name, s.start - t0, end - t0,
            cluster=cluster_of[stage], host_start=s.depth, host_nb=1,
            meta=meta,
        )
    return schedule
