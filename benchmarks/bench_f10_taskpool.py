"""Figure 10 — the task-based execution scheme.

The figure is the task-pool pseudo-code: a master creates initial tasks,
then every worker loops ``get() -> execute() -> free()`` until the pool is
exhausted.  This bench drives the pool runtime through exactly that scheme
and verifies its accounting: run + wait partitions each worker's time, the
"waiting time covers the time for get() and free() calls", and the pool
handles the fine-grained task counts the paper reports (> 200,000 tasks in
the quicksort experiments).
"""

from __future__ import annotations

from conftest import report

from repro.taskpool.numa import altix_4700
from repro.taskpool.pool import PoolTask, TaskPoolSim
from repro.taskpool.quicksort import QuicksortApp


class FanOutApp:
    """One master task creating work units, like Figure 10's init loop."""

    def __init__(self, n_units: int, unit_ops: float = 1.6e7):
        self.n_units = n_units
        self.unit_ops = unit_ops

    def initial_tasks(self):
        return [PoolTask(f"u{i}", self.unit_ops) for i in range(self.n_units)]

    def expand(self, task):
        return []


def test_figure10_execution_scheme(benchmark):
    machine = altix_4700(32)
    res = TaskPoolSim(machine, FanOutApp(2000), pool_overhead=2e-6).run()

    coverage_ok = all(
        abs((t.busy_time() + t.wait_time()) - res.makespan) < 1e-9
        for t in res.traces)

    # a big fine-grained run, like the paper's 200k-task experiments
    big = QuicksortApp(300_000_000, variant="random",
                       threshold=2048, seed=2)
    big_res = TaskPoolSim(altix_4700(64), big).run()

    report("Figure 10 (task pool execution scheme)", [
        ("work units executed", "all created tasks", str(res.total_tasks)),
        ("run+wait == makespan/worker", "accounting identity",
         "holds" if coverage_ok else "VIOLATED"),
        ("pool overhead accounted", "get()/free() in waiting time",
         f"{2e-6 * 2:.1e} s/task"),
        ("fine-grained scalability", "> 200,000 individual tasks",
         f"{big_res.total_tasks} tasks simulated"),
    ])

    assert res.total_tasks == 2000
    assert coverage_ok
    assert big_res.total_tasks > 200_000

    def run_pool():
        return TaskPoolSim(machine, FanOutApp(2000), pool_overhead=2e-6).run()

    result = benchmark(run_pool)
    assert result.total_tasks == 2000
