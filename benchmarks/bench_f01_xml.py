"""Figure 1 — the Jedule XML task definition.

Reproduces the exact document of Figure 1 (a multiprocessor task with
identifier "1", type "computation", executed on cluster 0 by eight
processors 0..7), verifies our parser reads it to the letter, and times the
XML round-trip on a realistically sized schedule (the paper's batch mode
processes "hundreds or thousands of schedules").
"""

from __future__ import annotations

from conftest import persist, report

from repro.core.model import Schedule
from repro.io import jedule_xml
from repro.obs.bench import time_min_of_k

FIGURE1_DOC = """\
<jedule version="1.0">
  <platform>
    <cluster id="0" hosts="8"/>
  </platform>
  <node_infos>
    <node_statistics>
      <node_property name="id" value="1"/>
      <node_property name="type" value="computation"/>
      <node_property name="start_time" value="0.000"/>
      <node_property name="end_time" value="0.310"/>
      <configuration>
        <conf_property name="cluster_id" value="0"/>
        <conf_property name="host_nb" value="8"/>
        <host_lists>
          <hosts start="0" nb="8"/>
        </host_lists>
      </configuration>
    </node_statistics>
  </node_infos>
</jedule>
"""


def _big_schedule(n_tasks: int = 2000) -> Schedule:
    s = Schedule()
    s.new_cluster(0, 64)
    for i in range(n_tasks):
        start = (i // 64) * 1.0
        s.new_task(i, "computation", start, start + 0.9,
                   cluster=0, host_start=i % 64, host_nb=1)
    return s


def test_figure1_document_parses_exactly(benchmark):
    schedule = jedule_xml.loads(FIGURE1_DOC)
    task = schedule.task("1")
    report("Figure 1 (task XML definition)", [
        ("task id", "1", task.id),
        ("type", "computation", task.type),
        ("start_time", "0.000", f"{task.start_time:.3f}"),
        ("end_time", "0.310", f"{task.end_time:.3f}"),
        ("cluster", "0", task.configurations[0].cluster_id),
        ("host_nb", "8", str(task.num_hosts)),
        ("hosts", "0..7", f"{task.hosts_in('0')[0]}..{task.hosts_in('0')[-1]}"),
    ])
    assert task.num_hosts == 8
    assert task.hosts_in("0") == tuple(range(8))

    big = _big_schedule()
    text = jedule_xml.dumps(big)

    def roundtrip():
        return jedule_xml.loads(text)

    persist("f01_xml", "roundtrip_2000_tasks",
            timings_s={"roundtrip": time_min_of_k(roundtrip)},
            metrics={"tasks": len(big), "document_bytes": len(text)})

    back = benchmark(roundtrip)
    assert len(back) == len(big)
