"""Figure 3 — a schedule with composite tasks.

"The schedule in this example contains two types of tasks, communication
tasks, marked red, and computation tasks, marked blue.  In order to mark the
time when a host performs communication and computation operations at the
same time, an orange composite task is introduced."

Builds a schedule where computations and communications overlap on shared
hosts, synthesizes the composites, renders the figure, and checks the
composite regions are exactly the overlaps.
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.core.colormap import default_colormap
from repro.core.composite import build_composite_tasks, with_composites
from repro.core.model import Schedule
from repro.render.api import export_schedule
from repro.render.png_codec import decode_png


def figure3_schedule() -> Schedule:
    """Computation phases overlapped by communications on subsets of hosts."""
    s = Schedule(meta={"figure": "3"})
    s.new_cluster(0, 8)
    # two computation waves on all hosts
    s.new_task("c1", "computation", 0.0, 4.0, cluster=0, host_start=0, host_nb=8)
    s.new_task("c2", "computation", 5.0, 9.0, cluster=0, host_start=0, host_nb=8)
    # communications overlapping the tail/head of the computations
    s.new_task("t1", "transfer", 3.0, 5.5, cluster=0, host_start=0, host_nb=4)
    s.new_task("t2", "transfer", 8.0, 10.0, cluster=0, host_start=4, host_nb=4)
    return s


def test_figure3_composites(benchmark, artifacts_dir):
    s = figure3_schedule()
    enriched = with_composites(s)
    composites = [t for t in enriched if t.type == "composite"]
    overlap_area = sum(c.duration * c.num_hosts for c in composites)
    # expected overlaps: t1 on c1 (1s x 4 hosts) + t1 on c2 (0.5s x 4)
    # + t2 on c2 (1s x 4 hosts)
    expected = 1.0 * 4 + 0.5 * 4 + 1.0 * 4
    report("Figure 3 (composite tasks)", [
        ("composite task type", "composite", composites[0].type),
        ("composite color", "orange (FF6200)",
         default_colormap().style_for_task(composites[0]).bg.hex()),
        ("overlap regions", "comp+comm overlaps", str(len(composites))),
        ("overlap area (host*s)", f"{expected:g}", f"{overlap_area:g}"),
    ])
    assert overlap_area == expected
    assert len(composites) == 3

    png_path = export_schedule(enriched, artifacts_dir / "figure03.png",
                               width=800, height=400)
    export_schedule(enriched, artifacts_dir / "figure03.svg")
    img = decode_png(png_path.read_bytes())
    orange = np.all(img == [255, 98, 0], axis=-1).sum()
    blue = np.all(img == [0, 0, 255], axis=-1).sum()
    red = np.all(img == [241, 0, 0], axis=-1).sum()
    assert orange > 100 and blue > 100 and red > 100  # all three colors visible

    # scaling: composite construction over many overlapping tasks
    big = Schedule()
    big.new_cluster(0, 64)
    rng = np.random.default_rng(1)
    for i in range(800):
        start = float(rng.uniform(0, 100))
        h = int(rng.integers(0, 60))
        big.new_task(f"c{i}", "computation", start, start + 3.0,
                     cluster=0, host_start=h, host_nb=4)

    result = benchmark(build_composite_tasks, big.tasks)
    assert result  # dense random schedules always overlap somewhere
