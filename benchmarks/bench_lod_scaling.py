"""Level-of-detail scaling — full vs. aggregated rendering at 1k/10k/100k jobs.

The LOD pipeline exists so that a schedule the size of a full PWA trace
(~100k jobs) renders in bounded time and with a bounded primitive count:
aggregation bins tasks into (host-band x time-bucket) cells, so the output
is sized by the pixel grid, not by the workload.  This benchmark generates
synthetic traces at three scales, renders each with ``lod="off"`` and
``lod="auto"``, and checks the crossover behaviour:

* below the auto threshold the two paths are byte-identical;
* at 100k jobs the aggregated path is at least 5x faster and emits far
  fewer rectangles than there are tasks.
"""

from __future__ import annotations

import random

from conftest import render_bytes, report

from repro.core.model import Schedule
from repro.core.stats import utilization
from repro.obs.bench import time_min_of_k
from repro.render.layout import layout_schedule
from repro.render.lod import LOD_REF_PREFIX

HOSTS = 1024
SIZES = (1_000, 10_000, 100_000)
TYPES = ("ft", "lu", "mg", "cg")


def synthetic_trace(n_jobs: int, hosts: int = HOSTS, seed: int = 7) -> Schedule:
    """A random rigid-job schedule shaped like a cluster trace."""
    rng = random.Random(seed)
    s = Schedule()
    s.new_cluster("c0", hosts)
    for i in range(n_jobs):
        start = rng.uniform(0.0, 100_000.0)
        duration = rng.uniform(10.0, 3_000.0)
        host_start = rng.randrange(hosts - 8)
        s.new_task(f"j{i}", rng.choice(TYPES), start, start + duration,
                   cluster="c0", host_start=host_start,
                   host_nb=rng.randint(1, 8))
    return s


def test_lod_scaling(benchmark, artifacts_dir):
    schedules = {n: synthetic_trace(n) for n in SIZES}

    timings: dict[int, tuple[float, float]] = {}
    runs: dict[int, tuple[list[float], list[float]]] = {}
    for n, s in schedules.items():
        off = time_min_of_k(lambda s=s: render_bytes(s, "png", lod="off"))
        auto = time_min_of_k(lambda s=s: render_bytes(s, "png", lod="auto"))
        timings[n] = (min(off), min(auto))
        runs[n] = (off, auto)

    big = schedules[SIZES[-1]]
    d = layout_schedule(big, lod="auto")
    lod_rects = sum(1 for r in d.rects
                    if r.ref and r.ref.startswith(LOD_REF_PREFIX))

    rows = []
    for n, (t_off, t_auto) in timings.items():
        rows.append((f"{n} jobs", f"off {t_off * 1e3:.0f} ms",
                     f"auto {t_auto * 1e3:.0f} ms ({t_off / t_auto:.1f}x)"))
    rows.append((f"rects at {SIZES[-1]} jobs", f"{SIZES[-1]} tasks",
                 f"{lod_rects} aggregated"))
    report("LOD scaling (full vs aggregated rendering)", rows)

    # persist the trajectory: noisy timings per size, deterministic
    # geometry/quality metrics that the regression gate hard-fails on
    from conftest import persist
    for n in SIZES:
        persist("lod_scaling", f"render_{n}",
                timings_s={"render_off": runs[n][0],
                           "render_auto": runs[n][1]})
    persist("lod_scaling", "quality",
            metrics={"lod_rects_100k": lod_rects,
                     "makespan_100k": big.makespan,
                     "utilization_100k": utilization(big),
                     "tasks_100k": len(big)})

    # Small inputs stay on the exact per-task path: identical output bytes.
    small = schedules[SIZES[0]]
    assert render_bytes(small, "png", lod="auto") == \
        render_bytes(small, "png", lod="off")

    # The headline claim: >= 5x at 100k jobs, and the primitive count is
    # bounded by the pixel grid rather than the task count.
    t_off, t_auto = timings[SIZES[-1]]
    assert t_off / t_auto >= 5.0
    assert 0 < lod_rects < SIZES[-1] / 2

    (artifacts_dir / "lod_scaling_100k.png").write_bytes(
        render_bytes(big, "png", lod="auto", title="100k jobs, LOD auto"))

    result = benchmark.pedantic(
        lambda: render_bytes(big, "png", lod="auto"), rounds=3, iterations=1)
    assert result  # non-empty PNG bytes
