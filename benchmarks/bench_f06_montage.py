"""Figure 6 — the structure of the Montage workflow.

"The structure of the Montage workflow is given in Figure 6 (nodes with the
same color are of same task type)."  The paper's instance has 50 compute
nodes.  This bench regenerates the 50-task instance, prints the per-stage
structure the figure shows, and times workflow generation.
"""

from __future__ import annotations

from conftest import report

from repro.dag.montage import MONTAGE_TASK_TYPES, montage_50, montage_workflow


def test_figure6_montage_structure(benchmark, artifacts_dir):
    g = montage_50()
    counts: dict[str, int] = {t: 0 for t in MONTAGE_TASK_TYPES}
    for node in g:
        counts[node.type] += 1
    levels = g.precedence_levels()
    depth = max(levels.values()) + 1

    report("Figure 6 (Montage workflow, 50 compute nodes)", [
        ("total tasks", "50", str(len(g))),
        ("mProject", "one per image", str(counts["mProject"])),
        ("mDiffFit", "one per overlap", str(counts["mDiffFit"])),
        ("mConcatFit/mBgModel", "1 each",
         f"{counts['mConcatFit']}/{counts['mBgModel']}"),
        ("mBackground", "one per image", str(counts["mBackground"])),
        ("mImgtbl/mAdd/mShrink/mJPEG", "1 each",
         "/".join(str(counts[t]) for t in
                  ("mImgtbl", "mAdd", "mShrink", "mJPEG"))),
        ("pipeline depth", "9 stages", str(depth)),
        ("edges", "(dense diff/fit joins)", str(len(g.edges))),
        ("single sink", "mJPEG", g.sinks()[0]),
    ])

    assert len(g) == 50
    assert depth == 9
    assert g.sinks() == ("mJPEG",)
    # per-level type homogeneity: "nodes with the same color are of same
    # task type" and Montage levels are single-stage
    for lv in range(depth):
        types = {g.node(v).type for v in g.tasks_at_level(lv)}
        assert len(types) == 1

    # the actual Figure 6 artifact: the layered node-link diagram
    from repro.render.daglayout import export_dag

    export_dag(g, artifacts_dir / "figure06_montage.png",
               width=1100, height=600, title="Montage workflow (50 tasks)")
    export_dag(g, artifacts_dir / "figure06_montage.svg",
               width=1100, height=600, title="Montage workflow (50 tasks)")

    benchmark(montage_workflow, 10, 24)
