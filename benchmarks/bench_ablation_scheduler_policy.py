"""Ablation — EASY backfilling vs. plain FCFS on the Thunder day.

The Figure 13 pipeline uses EASY backfilling (what production schedulers
like the one on Thunder ran).  This ablation quantifies why: the same job
stream under FCFS leaves the cluster emptier and makes jobs wait longer.
"""

from __future__ import annotations

from conftest import report

from repro.workloads.scheduler import simulate_jobs
from repro.workloads.thunder import THUNDER_NODES, THUNDER_RESERVED, ThunderSpec, generate_thunder_day


def test_ablation_easy_vs_fcfs(benchmark):
    spec = ThunderSpec(n_jobs=400)
    jobs = generate_thunder_day(spec, seed=11)

    def run(policy):
        return simulate_jobs(jobs, THUNDER_NODES, policy=policy,
                             reserved_nodes=THUNDER_RESERVED)

    easy = run("easy")
    fcfs = run("fcfs")

    def avg_wait(results):
        return sum(r.wait_time for r in results) / len(results)

    def finish(results):
        return max(r.end_time for r in results)

    report("Ablation (job scheduler policy, 400-job day)", [
        ("avg wait EASY", "(baseline)", f"{avg_wait(easy):.0f} s"),
        ("avg wait FCFS", ">= EASY", f"{avg_wait(fcfs):.0f} s"),
        ("last finish EASY", "(baseline)", f"{finish(easy):.0f} s"),
        ("last finish FCFS", ">= EASY", f"{finish(fcfs):.0f} s"),
        ("backfilled starts", "EASY reorders narrow jobs",
         str(sum(1 for a, b in zip(
             sorted(easy, key=lambda r: r.start_time),
             sorted(fcfs, key=lambda r: r.start_time))
             if a.job.id != b.job.id))),
    ])

    assert avg_wait(easy) <= avg_wait(fcfs) + 1e-9
    assert finish(easy) <= finish(fcfs) + 1e-9

    benchmark(run, "easy")
