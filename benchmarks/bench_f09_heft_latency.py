"""Figure 9 — HEFT on the corrected platform (realistic backbone).

"We can see that this schedule does not exhibit odd scheduling decisions.
The two fast clusters (processors 0-1 and 6-7) are chosen first and then the
slower clusters are used. ... one of these slow clusters is more heavily
used.  This reflects the impact of the greater backbone latency. ... the
overall makespan is the same for both schedules (140.9 seconds).  If we had
only relied on this metric to detect suspect behaviors, we would have
missed the issue."
"""

from __future__ import annotations

from collections import Counter

from conftest import report

from repro.core.colormap import auto_colormap
from repro.dag.montage import montage_50
from repro.platform.builders import heterogeneous_platform
from repro.render.api import export_schedule
from repro.sched.heft import heft_schedule
from bench_f08_heft_flat import cross_cluster_edges


def test_figure9_heft_realistic_backbone(benchmark, artifacts_dir):
    graph = montage_50(data_scale=10)
    flat_platform = heterogeneous_platform(flat_backbone=True)
    real_platform = heterogeneous_platform()

    flat = heft_schedule(graph, flat_platform)
    real = heft_schedule(graph, real_platform)

    cross_flat = cross_cluster_edges(graph, flat_platform, flat.assignment)
    cross_real = cross_cluster_edges(graph, real_platform, real.assignment)

    usage = Counter(real_platform.host(h).cluster_id
                    for h in real.assignment.values())
    slow_usage = sorted((usage.get("1", 0), usage.get("3", 0)))

    first4 = sorted(real.start.items(), key=lambda kv: kv[1])[:4]
    fast_first = sum(1 for v, _ in first4
                     if real_platform.host(real.assignment[v]).speed > 2e9)

    rel_gap = abs(flat.makespan - real.makespan) / max(flat.makespan,
                                                       real.makespan)
    report("Figure 9 (HEFT, Montage-50, realistic backbone)", [
        ("makespan flat vs realistic", "identical (140.9 s both)",
         f"{flat.makespan:.1f} vs {real.makespan:.1f} s "
         f"({rel_gap:.1%} apart)"),
        ("cross-cluster edges", "fewer than Figure 8",
         f"{cross_real} (< {cross_flat})"),
        ("fast clusters first", "processors 0-1 and 6-7 chosen first",
         f"{fast_first}/4 earliest tasks on fast procs"),
        ("slow-cluster usage", "one slow cluster more heavily used",
         f"{slow_usage[0]} vs {slow_usage[1]} tasks"),
        ("anomaly", "gone", "reduced" if cross_real < cross_flat else "still there"),
    ])

    assert cross_real < cross_flat
    assert fast_first >= 3
    assert slow_usage[1] > slow_usage[0]
    assert rel_gap < 0.25  # makespans stay close: the metric hides the bug

    export_schedule(real.schedule, artifacts_dir / "figure09_heft_realistic.png",
                    cmap=auto_colormap(real.schedule),
                    width=900, height=500, title="HEFT, realistic backbone")

    benchmark(heft_schedule, graph, real_platform)
