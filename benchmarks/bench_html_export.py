"""Interactive HTML export — payload build + page emit at trace scale.

The data-driven HTML backend must stay a *small* export at any schedule
size: past the task threshold it embeds LOD cell-run tiers (bounded by
the grid and the run budget, not the task count) instead of raw task
rectangles.  This benchmark times payload construction and full-page
emission at 2k/20k/100k synthetic jobs and hard-fails if the headline
size claim regresses: a 100k-job page must embed tiers, no raw tasks,
and stay under 1.5 MB.

Deterministic quality metrics (tier/run counts, embed decisions, the
size budget) land in ``BENCH_html.json`` and are compared against the
committed baseline by ``python -m repro.obs.regress`` in CI.
"""

from __future__ import annotations

import json
import re

from bench_lod_scaling import synthetic_trace
from conftest import persist, render_bytes, report

from repro.obs.bench import time_min_of_k
from repro.render.html_payload import build_payload, validate_payload

SIZES = (2_000, 20_000, 100_000)
SIZE_BUDGET = 1_500_000  # bytes, the "< 1.5 MB at 100k jobs" claim

_DATA_RE = re.compile(
    r'<script type="application/json" id="jedule-data">(.*?)</script>', re.S)


def _embedded_payload(page: bytes) -> dict:
    m = _DATA_RE.search(page.decode("utf-8"))
    assert m, "page has no embedded payload"
    return validate_payload(json.loads(m.group(1)))


def test_html_export_scaling(benchmark, artifacts_dir):
    schedules = {n: synthetic_trace(n) for n in SIZES}

    rows = []
    pages: dict[int, bytes] = {}
    for n, s in schedules.items():
        t_payload = time_min_of_k(lambda s=s: build_payload(s))
        t_page = time_min_of_k(lambda s=s: render_bytes(s, "html"))
        pages[n] = render_bytes(s, "html")
        persist("html", f"export_{n}",
                timings_s={"build_payload": t_payload, "emit_page": t_page})
        rows.append((f"{n} jobs", f"{min(t_page) * 1e3:.0f} ms",
                     f"{len(pages[n]) / 1e3:.0f} kB"))
    report("HTML export (payload + page emit)", rows)

    small = _embedded_payload(pages[SIZES[0]])
    big = _embedded_payload(pages[SIZES[-1]])

    # below the threshold: raw tasks, no tiers; at 100k: tiers, no tasks
    assert small["tasks"] is not None and small["lod"] is None
    assert big["tasks"] is None and big["lod"] is not None
    assert len(pages[SIZES[-1]]) < SIZE_BUDGET

    tier_runs = sum(len(band["runs"])
                    for tier in big["lod"]["tiers"]
                    for band in tier["clusters"])
    persist("html", "quality", metrics={
        "raw_embedded_2k": int(small["tasks"] is not None),
        "raw_embedded_100k": int(big["tasks"] is not None),
        "tiers_100k": len(big["lod"]["tiers"]),
        "tier_runs_100k": tier_runs,
        "page_under_budget_100k": int(len(pages[SIZES[-1]]) < SIZE_BUDGET),
    })

    (artifacts_dir / "html_export_100k.html").write_bytes(pages[SIZES[-1]])

    big_schedule = schedules[SIZES[-1]]
    result = benchmark.pedantic(
        lambda: render_bytes(big_schedule, "html"), rounds=3, iterations=1)
    assert result
