"""Batch renderer — parallel fan-out and content-addressed cache payoff.

The batch subsystem exists so a whole paper's figure set regenerates in one
command, fast: render jobs fan out across the process-wide *warm* worker
pool (:func:`repro.serve.pool.shared_pool` — resident processes, spawn +
import paid once) and re-runs are served from the content-addressed cache.
This benchmark builds an eight-figure manifest from synthetic traces (two
clean rounds for 4 workers) and measures:

* cold serial vs. cold 4-worker wall clock (the parallel speedup claim,
  >= 2.5x; needs >= 4 usable cores, otherwise the assertion is skipped);
* cold vs. warm-cache wall clock (>= 10x; core-count independent);
* that one corrupt input fails alone — every other figure still renders
  and the report names the failure.

The pool is warmed (spawned + pinged) before timing, so the measurement
captures steady-state fan-out, not first-spawn cost.
"""

from __future__ import annotations

import json
import os

import pytest
from conftest import report

from bench_lod_scaling import synthetic_trace

from repro.batch import load_manifest, run_manifest
from repro.io import save_schedule

N_FIGURES = 8
N_TASKS = 2_000


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _write_manifest(root, *, corrupt: bool = False) -> str:
    inputs = []
    for i in range(N_FIGURES):
        path = root / f"fig{i}.jed"
        save_schedule(synthetic_trace(N_TASKS, seed=100 + i), path)
        inputs.append(path.name)
    jobs = [{"input": name, "title": f"figure {i}"}
            for i, name in enumerate(inputs)]
    if corrupt:
        bad = root / "broken.jed"
        bad.write_text("<jedule>this is not a schedule", encoding="utf-8")
        jobs.append({"input": bad.name})
    manifest = root / "manifest.json"
    manifest.write_text(json.dumps({
        "name": "bench-batch",
        "output_dir": "out",
        "cache_dir": ".cache",
        "defaults": {"format": "png", "lod": "off"},
        "jobs": jobs,
    }), encoding="utf-8")
    return str(manifest)


def test_batch_warm_cache_speedup(tmp_path, benchmark):
    manifest = load_manifest(_write_manifest(tmp_path))

    cold = run_manifest(manifest, jobs=1)
    assert cold.ok
    assert cold.cache_misses == N_FIGURES

    warm = benchmark(lambda: run_manifest(manifest, jobs=1))
    assert warm.ok
    assert warm.cache_hits == N_FIGURES

    speedup = cold.elapsed_s / max(warm.elapsed_s, 1e-9)
    report("batch warm cache", [
        ("figures", "8", str(N_FIGURES)),
        ("cold serial", "-", f"{cold.elapsed_s * 1e3:.1f} ms"),
        ("warm cached", "-", f"{warm.elapsed_s * 1e3:.1f} ms"),
        ("speedup", ">= 10x", f"{speedup:.1f}x"),
    ], suite="batch", entry="warm_cache",
       timings_s={"cold": [cold.elapsed_s], "warm": [warm.elapsed_s]},
       metrics={"figures": N_FIGURES, "cache_hits": warm.cache_hits})
    assert speedup >= 10.0, f"warm cache only {speedup:.1f}x faster"


def test_batch_parallel_speedup(tmp_path):
    from repro.serve.pool import shared_pool

    cores = _usable_cores()
    manifest = load_manifest(_write_manifest(tmp_path))

    # pay worker spawn + pre-import before the clock starts: the claim is
    # about steady-state fan-out, which is what repeated runs (and the
    # render service) actually experience
    pool = shared_pool(4)
    for index in range(pool.size):
        pool.worker(index).ping()

    serial = run_manifest(manifest, jobs=1, use_cache=False)
    parallel = run_manifest(manifest, jobs=4, use_cache=False)
    assert serial.ok and parallel.ok

    speedup = serial.elapsed_s / max(parallel.elapsed_s, 1e-9)
    report("batch 4-worker fan-out", [
        ("figures", "8", str(N_FIGURES)),
        ("usable cores", ">= 4", str(cores)),
        ("serial", "-", f"{serial.elapsed_s * 1e3:.1f} ms"),
        ("4 workers", "-", f"{parallel.elapsed_s * 1e3:.1f} ms"),
        ("speedup", ">= 2.5x", f"{speedup:.2f}x"),
    ], suite="batch", entry="parallel_4x",
       timings_s={"serial": [serial.elapsed_s],
                  "parallel4": [parallel.elapsed_s]},
       metrics={"figures": N_FIGURES})
    if cores < 4:
        pytest.skip(f"speedup assertion needs >= 4 usable cores, have {cores}")
    assert speedup >= 2.5, f"4 workers only {speedup:.2f}x faster"


def test_batch_survives_corrupt_input(tmp_path):
    manifest = load_manifest(_write_manifest(tmp_path, corrupt=True))

    result = run_manifest(manifest, jobs=2, retries=0)
    assert not result.ok
    assert len(result.failures) == 1
    assert "broken.jed" in result.failures[0].input_path
    assert sum(1 for r in result.results if r.ok) == N_FIGURES
    for i in range(N_FIGURES):
        assert (tmp_path / "out" / f"fig{i}.png").stat().st_size > 0
    assert "broken.jed" in result.error_table()
