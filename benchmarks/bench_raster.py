"""Raster/PNG hot path — rasterize, encode, decode at 1k/10k/100k rects.

The single-core raster pipeline is the last leg of every PNG/BMP/PPM
render: ``rasterize()`` turns the primitive list into an (h, w, 3) uint8
canvas and ``encode_png()`` filters + deflates it.  This benchmark draws
Gantt-shaped rect fields (dense rows of small task rects, the regime of
Scully-Allison & Isaacs' 100k-task traces) on a 2000x1200 canvas at three
scales and times each stage separately, so ``BENCH_raster.json`` holds a
committed trajectory for the regression gate.

Two invariants are asserted on every run:

* ``decode(encode(img))`` is pixel-identical — the encoder's output must
  keep round-tripping through our own decoder, at every scale;
* batched rasterization is pixel-identical to the naive per-primitive
  z-order walk (checked here on the 1k drawing against per-item
  ``fill_rect`` calls).

The committed baseline was measured *after* the vectorization PR; the
pre-change numbers for the 100k drawing (same machine, same drawing) were
rasterize 0.77 s + encode 0.17 s = 0.94 s, a >= 3x margin over the current
path.  The in-test assertion keeps 2.5x of slack against that recorded
wall to absorb runner variance; day-to-day drift is caught by the
regression gate comparing min-of-k timings against the committed
baseline instead.
"""

from __future__ import annotations

import numpy as np
from conftest import persist, report

from repro.core.colormap import Color
from repro.obs.bench import time_min_of_k
from repro.render.geometry import Drawing, Rect
from repro.render.png_codec import decode_png, encode_png
from repro.render.raster import RasterImage, rasterize

WIDTH, HEIGHT = 2000, 1200
SIZES = (1_000, 10_000, 100_000)

#: pre-change single-core wall (same drawing generator, see module docstring):
#: {size: rasterize+encode seconds} measured at the commit before the
#: vectorization landed.  Kept as a reference metricless constant — the
#: live regression gate compares against benchmarks/baselines/.
PRE_CHANGE_RE_S = {1_000: 0.224, 10_000: 0.254, 100_000: 0.937}


def rect_field(n: int, width: int = WIDTH, height: int = HEIGHT,
               seed: int = 1) -> Drawing:
    """A Gantt-shaped drawing: n overlapping task rects in dense rows."""
    rng = np.random.default_rng(seed)
    d = Drawing(width, height)
    colors = [Color(int(c), int(c) // 2, 255 - int(c))
              for c in rng.integers(0, 256, 16)]
    xs = rng.uniform(0, width - 40, n)
    ys = rng.uniform(0, height - 20, n)
    ws = rng.uniform(2, 40, n)
    hs = rng.uniform(2, 18, n)
    for i in range(n):
        d.add(Rect(float(xs[i]), float(ys[i]), float(ws[i]), float(hs[i]),
                   fill=colors[i % 16]))
    return d


def reference_rasterize(drawing: Drawing) -> RasterImage:
    """Naive per-primitive walk — the semantics batching must reproduce."""
    img = RasterImage(drawing.width, drawing.height, drawing.background)
    for item in drawing:
        img.fill_rect(item.x, item.y, item.w, item.h, item.fill)
    return img


def test_raster_pipeline(benchmark):
    drawings = {n: rect_field(n) for n in SIZES}

    # Correctness first: batching is pixel-exact vs. the per-item walk.
    small = drawings[SIZES[0]]
    assert np.array_equal(rasterize(small).pixels,
                          reference_rasterize(small).pixels)

    rows = []
    stage_runs: dict[int, dict[str, list[float]]] = {}
    for n, d in drawings.items():
        raster_runs = time_min_of_k(lambda d=d: rasterize(d))
        img = rasterize(d)
        encode_runs = time_min_of_k(lambda img=img: encode_png(img.pixels))
        png = encode_png(img.pixels)
        decode_runs = time_min_of_k(lambda png=png: decode_png(png))

        # The encoder's bytes must keep round-tripping through the decoder
        # pixel-for-pixel — CI fails here if either side drifts.
        assert np.array_equal(decode_png(png), img.pixels), \
            f"encode/decode round-trip broke at {n} rects"

        stage_runs[n] = {"rasterize": raster_runs, "encode": encode_runs,
                         "decode": decode_runs}
        t_re = min(raster_runs) + min(encode_runs)
        rows.append((f"{n} rects rasterize+encode",
                     f"pre-change {PRE_CHANGE_RE_S[n] * 1e3:.0f} ms",
                     f"{t_re * 1e3:.0f} ms ({PRE_CHANGE_RE_S[n] / t_re:.1f}x)"))
        rows.append((f"{n} rects decode", "-",
                     f"{min(decode_runs) * 1e3:.1f} ms"))

    report("Raster/PNG hot path (2000x1200)", rows)
    for n in SIZES:
        persist("raster", f"pipeline_{n}", timings_s=stage_runs[n])

    # Deterministic quality metrics: the painted geometry must not drift.
    big_img = rasterize(drawings[SIZES[-1]])
    background = int(np.all(big_img.pixels == 255, axis=-1).sum())
    persist("raster", "quality",
            metrics={"painted_px_100k": WIDTH * HEIGHT - background,
                     "canvas_px": WIDTH * HEIGHT})

    # The headline claim of the vectorization PR, with slack for CI noise:
    # >= 3x was measured against the pre-change wall on the dev machine.
    t_100k = (min(stage_runs[SIZES[-1]]["rasterize"])
              + min(stage_runs[SIZES[-1]]["encode"]))
    assert t_100k < PRE_CHANGE_RE_S[SIZES[-1]] / 2.5, \
        f"100k-rect rasterize+encode took {t_100k:.3f}s"

    result = benchmark.pedantic(
        lambda: encode_png(rasterize(drawings[SIZES[-1]]).pixels),
        rounds=3, iterations=1)
    assert result[:8] == b"\x89PNG\r\n\x1a\n"
