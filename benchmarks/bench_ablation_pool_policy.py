"""Ablation — LIFO vs. FIFO task-pool ordering for recursive applications.

The Section VI runtime pops the newest task first (LIFO), the standard
choice for recursive task parallelism: children of a partition are hot in
cache and depth-first traversal bounds the pool size.  FIFO executes the
task tree breadth-first, inflating the number of simultaneously live tasks.
"""

from __future__ import annotations

from conftest import report

from repro.taskpool.numa import altix_4700
from repro.taskpool.pool import PoolPolicy, TaskPoolSim
from repro.taskpool.quicksort import QuicksortApp

N = 5_000_000


def _run(policy: PoolPolicy):
    # the inverse variant splits deterministically, so both
    # policies execute the identical task tree
    app = QuicksortApp(N, variant="inverse", seed=5)
    sim = TaskPoolSim(altix_4700(32), app, policy=policy)
    res = sim.run()
    return res, sim


def test_ablation_pool_policy(benchmark):
    lifo, sim_lifo = _run(PoolPolicy.LIFO)
    fifo, sim_fifo = _run(PoolPolicy.FIFO)

    report("Ablation (pool ordering, quicksort 5M, 32 workers)", [
        ("tasks", "identical task tree", f"{lifo.total_tasks} vs {fifo.total_tasks}"),
        ("makespan LIFO", "(depth-first baseline)", f"{lifo.makespan:.3f} s"),
        ("makespan FIFO", "similar (work conserving)", f"{fifo.makespan:.3f} s"),
        ("busy fraction LIFO", "", f"{lifo.busy_fraction():.2%}"),
        ("busy fraction FIFO", "", f"{fifo.busy_fraction():.2%}"),
    ])

    assert lifo.total_tasks == fifo.total_tasks
    # both are work-conserving: makespans within 2x of each other
    ratio = max(lifo.makespan, fifo.makespan) / min(lifo.makespan, fifo.makespan)
    assert ratio < 2.0

    benchmark.pedantic(lambda: _run(PoolPolicy.LIFO), rounds=3, iterations=1)
