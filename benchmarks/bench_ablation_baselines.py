"""Ablation — mixed-parallel scheduling vs. the pure baselines.

Section III-A motivates the whole M-task case study: mixed-parallel
algorithms "reduce the completion time of the scheduled applications with
regard to schedules that only exploit either task- or data-parallelism".
This ablation measures that reduction across DAG families.
"""

from __future__ import annotations

from conftest import report

from repro.dag.generators import LayeredDagSpec, layered_dag, serial_dag, wide_dag
from repro.dag.moldable import AmdahlModel
from repro.platform.builders import homogeneous_cluster
from repro.sched.baselines import data_parallel_schedule, task_parallel_schedule
from repro.sched.cpa import cpa_schedule

MODEL = AmdahlModel(0.05)


def test_ablation_mixed_vs_pure_parallelism(benchmark):
    platform = homogeneous_cluster(16, 1e9)
    families = {
        "layered": layered_dag(LayeredDagSpec(n_tasks=30, layers=6), seed=1),
        "wide": wide_dag(30, seed=1),
        "serial": serial_dag(12),
    }
    rows = []
    gains = {}
    for name, g in families.items():
        mixed = cpa_schedule(g, platform, MODEL).makespan
        tp = task_parallel_schedule(g, platform, MODEL).makespan
        dp = data_parallel_schedule(g, platform, MODEL).makespan
        gains[name] = (mixed, tp, dp)
        rows.append((f"{name} DAG", "mixed <= min(task, data)",
                     f"mixed {mixed:6.2f}  task-only {tp:6.2f}  "
                     f"data-only {dp:6.2f}"))
    report("Ablation (mixed vs pure parallelism, 16 procs)", rows)

    for name, (mixed, tp, dp) in gains.items():
        assert mixed <= min(tp, dp) * 1.05, f"{name}: mixed not competitive"
    # on at least one family, mixed strictly beats both
    assert any(mixed < 0.95 * min(tp, dp) for mixed, tp, dp in gains.values())

    g = families["layered"]
    benchmark(cpa_schedule, g, platform, MODEL)
