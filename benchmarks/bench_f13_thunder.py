"""Figure 13 — one day of the LLNL Thunder cluster workload.

"The graphic shows the workload of the cluster that was obtained on one day
in 2007. ... On this day, 834 jobs were executed on that cluster.  20 nodes
of this cluster were reserved as login and debug nodes, which can be seen in
the graphic as jobs get only executed by nodes with a number greater than
20.  We also highlighted in yellow the jobs of user 6447."

The PWA trace is not redistributable offline, so the calibrated synthetic
generator of :mod:`repro.workloads.thunder` stands in (see DESIGN.md); the
pipeline (SWF jobs -> EASY scheduler -> bird's-eye schedule -> rendering)
is the one a real trace would flow through.
"""

from __future__ import annotations

from conftest import report

from repro.core.stats import utilization
from repro.render.api import export_schedule
from repro.workloads.stats import workload_metrics
from repro.workloads.bridge import HIGHLIGHT_TYPE, workload_colormap, workload_schedule
from repro.workloads.scheduler import simulate_jobs
from repro.workloads.thunder import (
    THUNDER_NODES,
    THUNDER_RESERVED,
    THUNDER_USER,
    ThunderSpec,
    generate_thunder_day,
)


def test_figure13_thunder_day(benchmark, artifacts_dir):
    spec = ThunderSpec()
    jobs = generate_thunder_day(spec)
    scheduled = simulate_jobs(jobs, THUNDER_NODES, policy="easy",
                              reserved_nodes=THUNDER_RESERVED)
    window = (spec.warmup_seconds, spec.warmup_seconds + spec.day_seconds)
    schedule = workload_schedule(scheduled, THUNDER_NODES,
                                 highlight_user=THUNDER_USER, window=window)

    highlighted = schedule.tasks_of_type(HIGHLIGHT_TYPE)
    min_node = min(min(t.hosts_in("0")) for t in schedule)

    report("Figure 13 (LLNL Thunder, one day in 2007)", [
        ("cluster nodes", "1024", str(THUNDER_NODES)),
        ("reserved login/debug nodes", "20 (nodes 0-19 empty)",
         f"{len(THUNDER_RESERVED)} (lowest used node: {min_node})"),
        ("jobs finished on the day", "834", str(len(schedule))),
        ("highlighted user", "6447 (yellow)",
         f"{THUNDER_USER} ({len(highlighted)} jobs)"),
        ("day utilization", "(busy cluster)",
         f"{utilization(schedule):.2f}"),
    ], suite="f13_thunder", entry="figure13",
       metrics={"jobs": len(schedule),
                "lowest_used_node": min_node,
                "highlighted_jobs": len(highlighted),
                "day_utilization": utilization(schedule),
                **{f"wl_{k}": v
                   for k, v in workload_metrics(scheduled).items()}})

    assert len(schedule) == 834
    assert min_node >= 20
    assert highlighted

    export_schedule(schedule, artifacts_dir / "figure13_thunder.png",
                    cmap=workload_colormap(), width=1200, height=700,
                    title="LLNL Thunder, one day")

    def pipeline():
        j = generate_thunder_day(spec)
        s = simulate_jobs(j, THUNDER_NODES, policy="easy",
                          reserved_nodes=THUNDER_RESERVED)
        return workload_schedule(s, THUNDER_NODES, window=window)

    result = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert len(result) == 834
