"""Figure 2 — the color map XML with a composite rule.

Reproduces the exact document of Figure 2 (standard_map: white-on-blue
computation, black-on-red transfer, white-on-orange composite of the two),
checks color resolution against the figure's hex values, and times color-map
resolution over a large schedule.
"""

from __future__ import annotations

from conftest import report

from repro.core.colormap import Color
from repro.core.model import Configuration, Schedule, Task
from repro.io import colormap_xml

FIGURE2_DOC = """\
<cmap name="standard_map">
  <conf name="min_font_size_label" value="11"/>
  <conf name="font_size_label" value="13"/>
  <conf name="font_size_axes" value="12"/>
  <task id="computation">
    <color type="fg" rgb="FFFFFF"/>
    <color type="bg" rgb="0000FF"/>
  </task>
  <task id="transfer">
    <color type="fg" rgb="000000"/>
    <color type="bg" rgb="f10000"/>
  </task>
  <composite>
    <task id="computation"/>
    <task id="transfer"/>
    <color type="fg" rgb="FFFFFF"/>
    <color type="bg" rgb="ff6200"/>
  </composite>
</cmap>
"""


def test_figure2_colormap(benchmark):
    cmap = colormap_xml.loads(FIGURE2_DOC)
    comp = cmap.style_for_type("computation")
    xfer = cmap.style_for_type("transfer")
    rule = cmap.composite_style(["computation", "transfer"])
    assert rule is not None
    report("Figure 2 (color map XML)", [
        ("map name", "standard_map", cmap.name),
        ("computation bg", "0000FF", comp.bg.hex()),
        ("computation fg", "FFFFFF", comp.fg.hex()),
        ("transfer bg", "F10000", xfer.bg.hex()),
        ("transfer fg", "000000", xfer.fg.hex()),
        ("composite bg", "FF6200", rule.bg.hex()),
        ("min_font_size_label", "11", cmap.config["min_font_size_label"]),
    ])
    assert comp.bg == Color.from_hex("0000FF")
    assert rule.bg == Color.from_hex("FF6200")

    # resolution throughput over a synthetic schedule with composites
    tasks = []
    for i in range(5000):
        t = Task(str(i), "composite" if i % 3 == 0 else "computation",
                 0, 1, [Configuration("0", [(0, 1)])],
                 {"member_types": "computation,transfer"})
        tasks.append(t)

    def resolve_all():
        return [cmap.style_for_task(t) for t in tasks]

    styles = benchmark(resolve_all)
    assert len(styles) == 5000
