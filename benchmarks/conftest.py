"""Shared helpers for the figure-reproduction benchmarks.

Every ``bench_fNN_*.py`` regenerates one figure of the paper: it builds the
experiment, prints the quantities the figure conveys (paper claim vs. what
we measure), asserts the *shape* of the result, renders the figure to
``benchmarks/artifacts/``, and times the computational core with
pytest-benchmark.

Results are no longer print-only: :func:`report` (and the lower-level
:func:`persist`) also feed the ``repro.obs`` run registry.  At session end
every touched suite is written as ``benchmarks/artifacts/BENCH_<suite>.json``
and appended to ``benchmarks/artifacts/runlog.jsonl``, giving each
benchmark run a persisted, environment-stamped record.  Committed
snapshots live in ``benchmarks/baselines/`` and
``python -m repro.obs.regress`` compares the two (see
``docs/observability.md``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs.bench import BenchSuite

ARTIFACTS = Path(__file__).parent / "artifacts"
BASELINES = Path(__file__).parent / "baselines"
RUNLOG = ARTIFACTS / "runlog.jsonl"

_suites: dict[str, BenchSuite] = {}


@pytest.fixture(scope="session")
def artifacts_dir() -> Path:
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


def render_bytes(schedule, format: str = "png", **options) -> bytes:
    """Render an in-memory schedule through the RenderRequest pipeline.

    The single render entry point for benchmark code — same code path the
    CLI and the batch runner use, so timings measure what users get.
    """
    from repro.render.api import RenderRequest, render_request_bytes

    return render_request_bytes(
        RenderRequest(output_format=format, **options), schedule)


def persist(suite: str, entry: str, *, timings_s: dict | None = None,
            metrics: dict | None = None, rows: list | None = None) -> None:
    """Queue one benchmark record; flushed to disk at session end.

    ``timings_s`` values may be run lists (min-of-k compares bests);
    ``metrics`` must be deterministic — the regression gate hard-fails on
    their drift.
    """
    bucket = _suites.setdefault(suite, BenchSuite(suite))
    bucket.record(entry, timings_s=timings_s, metrics=metrics, rows=rows)


def report(figure: str, rows: list[tuple[str, str, str]], *,
           suite: str | None = None, entry: str | None = None,
           timings_s: dict | None = None,
           metrics: dict | None = None) -> None:
    """Print a paper-vs-measured table for one figure; persist it if asked.

    With ``suite`` given the table rows ride along into the suite's
    ``BENCH_<suite>.json`` record together with any machine-readable
    ``timings_s`` / ``metrics``.
    """
    print(f"\n=== {figure} ===")
    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'quantity':<{width}}  {'paper':>24}  {'measured':>24}")
    for name, paper, measured in rows:
        print(f"{name:<{width}}  {paper:>24}  {measured:>24}")
    if suite is not None:
        persist(suite, entry or figure, timings_s=timings_s, metrics=metrics,
                rows=[list(r) for r in rows])


def pytest_sessionfinish(session, exitstatus):
    """Flush every touched suite to BENCH_*.json + the JSONL run log."""
    if not _suites:
        return
    ARTIFACTS.mkdir(exist_ok=True)
    for bucket in _suites.values():
        path = bucket.write(ARTIFACTS, runlog=RUNLOG)
        print(f"\nbench records: wrote {path}")
    _suites.clear()
