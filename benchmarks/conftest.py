"""Shared helpers for the figure-reproduction benchmarks.

Every ``bench_fNN_*.py`` regenerates one figure of the paper: it builds the
experiment, prints the quantities the figure conveys (paper claim vs. what
we measure), asserts the *shape* of the result, renders the figure to
``benchmarks/artifacts/``, and times the computational core with
pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

ARTIFACTS = Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifacts_dir() -> Path:
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


def report(figure: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a paper-vs-measured table for one figure."""
    print(f"\n=== {figure} ===")
    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'quantity':<{width}}  {'paper':>24}  {'measured':>24}")
    for name, paper, measured in rows:
        print(f"{name:<{width}}  {paper:>24}  {measured:>24}")
