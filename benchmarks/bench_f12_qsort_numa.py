"""Figure 12 — Quicksort of 200,000,000 inversely sorted integers.

"With a specially crafted input array (inversely sorted numbers and
selecting the middle element as pivot element) ... only one processor is
busy in almost half the total execution time.  Since the processor has to
swap every pair of numbers, it takes much longer than for the random input
case.  After this initial task is finished two processors can start working
concurrently, then 4 and so on.  Interestingly, after some time of parallel
execution with all processors, there is another hole where only a few
processors are used.  This is due to the high memory bandwidth requirements
and the NUMA architecture."

The deterministic fluid-contention model alone places the desync window at
the end of the parallel phase; with the run-to-run duration variance of a
real machine (``duration_jitter``), the *mid-run* hole of the figure —
full width, a dip to a few processors, full width again — appears as well,
which the second half of this bench demonstrates.
"""

from __future__ import annotations

from conftest import report

from repro.core.stats import utilization_profile
from repro.render.api import export_schedule
from repro.taskpool.numa import NumaMachine, altix_4700
from repro.taskpool.pool import TaskPoolSim
from repro.taskpool.quicksort import QuicksortApp
from repro.taskpool.trace import pool_result_to_schedule

N = 200_000_000
WORKERS = 64


def _run(bandwidth: float | None, jitter: float = 0.0):
    app = QuicksortApp(N, variant="inverse", seed=7)
    machine = altix_4700(WORKERS) if bandwidth is None else \
        NumaMachine(WORKERS // 2, 2, 1.6e9, bandwidth)
    return TaskPoolSim(machine, app, duration_jitter=jitter,
                       jitter_seed=42).run()


def _midrun_holes(result, threshold=16, min_frac=0.005):
    """Low-utilization windows strictly between two full-width phases."""
    from repro.core.stats import low_utilization_windows

    s = pool_result_to_schedule(result)
    prof = utilization_profile(s, types=["computation"])
    highs = [t for t, c in zip(prof.times, prof.counts) if c >= WORKERS - 8]
    if not highs:
        return []
    t_first, t_last = min(highs), max(highs)
    return [(a, b) for a, b in low_utilization_windows(
                s, threshold, min_duration=result.makespan * min_frac,
                types=["computation"])
            if t_first < a and b < t_last]


def test_figure12_quicksort_inverse(benchmark, artifacts_dir):
    res = _run(None)
    ideal = _run(1e15)  # infinite-bandwidth ablation

    schedule = pool_result_to_schedule(res)
    prof = utilization_profile(schedule, types=["computation"])

    single = prof.time_with_count(lambda c: c == 1)
    doubling = [k for k in (1, 2, 4, 8, 16, 32)
                if any(c == k for c in prof.counts)]

    def late_partial(result):
        p = utilization_profile(pool_result_to_schedule(result),
                                types=["computation"])
        t_full = next(t for t, c in zip(p.times, p.counts) if c >= WORKERS)
        return sum(p.times[i + 1] - p.times[i]
                   for i in range(len(p.times) - 1)
                   if p.times[i] >= t_full and p.counts[i] < WORKERS)

    jittered = _run(None, jitter=0.3)
    holes = _midrun_holes(jittered)

    report("Figure 12 (Quicksort, 200M inversely sorted integers)", [
        ("input", "200,000,000 inverse ints", f"{N:,} elements"),
        ("single-proc phase", "almost half the run",
         f"{single / res.makespan:.0%} of {res.makespan:.2f} s"),
        ("parallelism doubling", "1, 2, 4, ... processors",
         ",".join(str(k) for k in doubling)),
        ("peak parallelism", "64", str(prof.peak)),
        ("NUMA slowdown vs infinite bw", "contention matters",
         f"{res.makespan / ideal.makespan:.2f}x"),
        ("contention hole (partial util after full)", "present",
         f"{late_partial(res) * 1e3:.1f} ms vs {late_partial(ideal) * 1e3:.1f} ms ideal"),
        ("mid-run hole (with duration variance)",
         "hole between two full phases",
         f"{len(holes)} hole(s), e.g. "
         + (f"[{holes[0][0]:.2f}, {holes[0][1]:.2f}] s" if holes else "-")),
    ])

    assert 0.25 < single / res.makespan < 0.65
    assert doubling == [1, 2, 4, 8, 16, 32]
    assert prof.peak == WORKERS
    assert res.makespan > 1.02 * ideal.makespan
    assert late_partial(res) > 5 * late_partial(ideal)
    assert holes, "duration variance must open a mid-run utilization hole"

    export_schedule(
        pool_result_to_schedule(res, min_duration=res.makespan / 2000),
        artifacts_dir / "figure12_qsort_inverse.png",
        width=1000, height=600, title="Quicksort, 200M inversely sorted")
    export_schedule(
        pool_result_to_schedule(jittered, min_duration=jittered.makespan / 2000),
        artifacts_dir / "figure12_qsort_inverse_jitter.png",
        width=1000, height=600,
        title="Quicksort, 200M inversely sorted (duration variance)")

    benchmark.pedantic(lambda: _run(None), rounds=3, iterations=1)
