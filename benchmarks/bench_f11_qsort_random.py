"""Figure 11 — Quicksort of 10,000,000 random integers on the Altix.

"Task execution times are highlighted in blue and waiting times are colored
red.  It can be noticed that due to an accidental bad choice of the pivot
element, the initial array is not split into nearly equal-sized sub-arrays.
... there is a long delay of the parallel execution.  But even after a
short period of parallel execution there are still some periods with low
utilization with only 2-4 processors actually running."
"""

from __future__ import annotations

from conftest import report

from repro.core.stats import utilization_profile
from repro.render.api import export_schedule
from repro.taskpool.numa import altix_4700
from repro.taskpool.pool import TaskPoolSim
from repro.taskpool.quicksort import QuicksortApp
from repro.taskpool.trace import pool_result_to_schedule

N = 10_000_000
WORKERS = 64


def test_figure11_quicksort_random(benchmark, artifacts_dir):
    app = QuicksortApp(N, variant="random", first_split=0.05, seed=7)
    res = TaskPoolSim(altix_4700(WORKERS), app).run()
    schedule = pool_result_to_schedule(res)
    prof = utilization_profile(schedule, types=["computation"])

    early = prof.value_at(0.05 * res.makespan)
    t_ramped = next((t for t, c in zip(prof.times, prof.counts) if c >= 16),
                    None)
    low_after = prof.time_with_count(lambda c: 1 <= c <= 4)

    report("Figure 11 (Quicksort, 10M random integers, 64 workers)", [
        ("input", "10,000,000 random ints", f"{N:,} elements"),
        ("tasks created", "(thousands)", f"{res.total_tasks:,}"),
        ("makespan", "(authors' machine)", f"{res.makespan:.3f} s"),
        ("parallelism at 5% of run", "tiny (bad first pivot)", str(early)),
        ("ramp to >=16 busy at", "delayed",
         f"{t_ramped / res.makespan:.0%} of run" if t_ramped else "never"),
        ("time at 2-4 busy procs", "low-utilization periods persist",
         f"{low_after:.3f} s ({low_after / res.makespan:.0%})"),
        ("peak parallelism", "64", str(prof.peak)),
    ])

    assert early <= 4
    assert t_ramped is not None
    assert low_after > 0
    assert prof.peak == WORKERS

    export_schedule(
        pool_result_to_schedule(res, min_duration=res.makespan / 2000),
        artifacts_dir / "figure11_qsort_random.png",
        width=1000, height=600, title="Quicksort, 10M random integers")

    def simulate():
        a = QuicksortApp(N, variant="random", first_split=0.05, seed=7)
        return TaskPoolSim(altix_4700(WORKERS), a).run()

    benchmark.pedantic(simulate, rounds=3, iterations=1)
