"""Figure 8 — HEFT schedule of Montage on the flat-backbone platform.

"We can see that the last task executed on processor 2 implies a strange
scheduling decision. ... sending data to another cluster is as costly as
executing the task locally.  The reason ... was in fact the description of
the execution platform: the latency of the backbone connecting the
different clusters was the same as the one for the links connecting the
processors of a same cluster."

Regenerates the buggy-platform schedule and quantifies the anomaly: tasks
freely spread across clusters because remote == local.
"""

from __future__ import annotations

from conftest import report

from repro.core.colormap import auto_colormap
from repro.dag.montage import montage_50
from repro.platform.builders import heterogeneous_platform
from repro.render.api import export_schedule
from repro.sched.heft import heft_schedule


def cross_cluster_edges(graph, platform, assignment) -> int:
    return sum(1 for e in graph.edges
               if platform.host(assignment[e.src]).cluster_id
               != platform.host(assignment[e.dst]).cluster_id)


def test_figure8_heft_flat_backbone(benchmark, artifacts_dir):
    graph = montage_50(data_scale=10)
    platform = heterogeneous_platform(flat_backbone=True)
    result = heft_schedule(graph, platform)

    cross = cross_cluster_edges(graph, platform, result.assignment)
    mbackground_clusters = sorted(
        platform.host(h).cluster_id
        for v, h in result.assignment.items() if v.startswith("mBackground"))

    report("Figure 8 (HEFT, Montage-50, flat backbone)", [
        ("makespan", "140.9 s (authors' instance)",
         f"{result.makespan:.1f} s (our instance)"),
        ("cross-cluster edges", "many (remote == local)",
         f"{cross}/{len(graph.edges)}"),
        ("mBackground spread", "anomalous cross-cluster placement",
         ",".join(mbackground_clusters)),
        ("anomaly", "present", "present" if cross > len(graph.edges) // 2
         else "absent"),
    ])

    # the anomaly: with a flat backbone, over half the dataflow crosses
    # clusters although the platform has only 4 clusters
    assert cross > len(graph.edges) // 2
    assert len(set(mbackground_clusters)) > 2  # one task type, many clusters

    export_schedule(result.schedule, artifacts_dir / "figure08_heft_flat.png",
                    cmap=auto_colormap(result.schedule),
                    width=900, height=500, title="HEFT, flat backbone")
    export_schedule(result.schedule, artifacts_dir / "figure08_heft_flat.pdf",
                    cmap=auto_colormap(result.schedule),
                    width=900, height=500)

    benchmark(heft_schedule, graph, platform)
