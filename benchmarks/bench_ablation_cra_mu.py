"""Ablation — the mu parameter of the CRA share formula.

``beta_i = mu/|A| + (1-mu) * W(i)/sum W(j)``: mu = 1 splits equally, mu = 0
splits purely by work.  The paper notes mu "give[s] more importance to the
work while distributing the resources"; this ablation sweeps it and shows
the classic makespan/fairness trade-off the Section IV evaluation studies.
"""

from __future__ import annotations

from conftest import report

from repro.dag.generators import LayeredDagSpec, layered_dag
from repro.dag.moldable import AmdahlModel
from repro.platform.builders import homogeneous_cluster
from repro.sched.cpa import cpa_schedule
from repro.sched.cra import cra_schedule
from repro.sched.metrics import jain_fairness, stretches

MODEL = AmdahlModel(0.05)


def test_ablation_cra_mu(benchmark):
    platform = homogeneous_cluster(20, 1e9)
    sizes = (30, 18, 10, 6)  # very uneven applications
    graphs = [layered_dag(LayeredDagSpec(n_tasks=n, layers=4), seed=20 + i)
              for i, n in enumerate(sizes)]
    dedicated = [cpa_schedule(g, platform, MODEL).makespan for g in graphs]

    rows = []
    sweep = {}
    for mu in (0.0, 0.25, 0.5, 0.75, 1.0):
        result = cra_schedule(graphs, platform, MODEL, policy="work", mu=mu)
        contended = [r.sim.schedule.end_time for r in result.app_results]
        s = stretches(contended, dedicated)
        sweep[mu] = (result.makespan, jain_fairness(s), result.shares)
        rows.append((f"mu={mu:.2f}", "shares/makespan/fairness",
                     f"{'/'.join(map(str, result.shares))}  "
                     f"{result.makespan:6.2f} s  {jain_fairness(s):.3f}"))
    report("Ablation (CRA mu sweep, 4 uneven apps on 20 procs)", rows)

    # mu=0 gives the heavy app the biggest share; mu=1 splits equally
    heavy = max(range(4), key=lambda i: graphs[i].total_work())
    assert sweep[0.0][2][heavy] == max(sweep[0.0][2])
    assert sweep[1.0][2] == (5, 5, 5, 5)
    # work-aware splitting beats the equal split on batch makespan here
    assert sweep[0.0][0] <= sweep[1.0][0] + 1e-9

    benchmark(cra_schedule, graphs, platform, MODEL, policy="work", mu=0.5)
