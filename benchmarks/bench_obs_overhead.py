"""Observability overhead — disabled instrumentation must cost < 2 %.

The ``repro.obs`` layer instruments every pipeline stage (parsers,
schedulers, simulator, layout, encoders).  Its contract is that when
observability is *off* — the default — every instrumentation point
reduces to a single module-attribute check, so an uninstrumented build
and the shipped build are indistinguishable in wall-clock terms.

Measured here on a 10k-task render (the ISSUE acceptance bar):

* ``t_disabled``: best-of render time with observability off.
* ``n_ops``: how many instrumentation events that same render actually
  crosses (counted from one *enabled* run — every span plus every
  counter/gauge call).
* ``t_noop``: micro-benchmarked cost of one disabled instrumentation
  event (span enter/exit plus a counter add).

The honest counterfactual — the same code with instrumentation deleted —
cannot be compiled from here, so the overhead bound is computed as
``n_ops * t_noop`` (an over-estimate: the micro-benchmark loop overhead
is charged to the no-op) and asserted to stay below 2 % of
``t_disabled``.  The enabled run is also timed for the report, since
users pay that price when they pass ``--trace``.
"""

from __future__ import annotations

import time

from conftest import persist, render_bytes, report

from repro import obs
from repro.obs.bench import time_min_of_k

from bench_lod_scaling import synthetic_trace

N_TASKS = 10_000
MAX_OVERHEAD = 0.02


def _count_instrumentation_ops(schedule) -> int:
    """Instrumentation events one render crosses (from an enabled run)."""
    with obs.capture() as trace:
        render_bytes(schedule, "png", lod="off")
    return (len(trace.spans)
            + len(trace.counters) + len(trace.gauges) + len(trace.gauge_peaks))


def _noop_cost_per_op(iterations: int = 200_000) -> float:
    """Cost of one disabled span enter/exit + counter add."""
    assert not obs.is_enabled()
    t0 = time.perf_counter()
    for _ in range(iterations):
        with obs.span("bench.noop", n=1):
            obs.add("bench.counter")
    elapsed = time.perf_counter() - t0
    return elapsed / iterations


def test_obs_overhead(benchmark):
    schedule = synthetic_trace(N_TASKS)

    assert not obs.is_enabled()
    disabled_runs = time_min_of_k(
        lambda: render_bytes(schedule, "png", lod="off"))
    t_disabled = min(disabled_runs)

    n_ops = _count_instrumentation_ops(schedule)
    assert n_ops > 0, "instrumented pipeline must record spans when enabled"

    t_noop = _noop_cost_per_op()
    overhead = n_ops * t_noop

    def _enabled_render():
        with obs.capture():
            render_bytes(schedule, "png", lod="off")

    enabled_runs = time_min_of_k(_enabled_render)
    t_enabled = min(enabled_runs)

    report("observability overhead (10k-task render)", [
        ("render, obs disabled", "baseline", f"{t_disabled * 1e3:.1f} ms"),
        ("instrumentation events", "-", f"{n_ops}"),
        ("disabled no-op cost", "-", f"{t_noop * 1e9:.0f} ns/event"),
        ("worst-case overhead", "< 2 %",
         f"{overhead / t_disabled * 100:.4f} %"),
        ("render, obs enabled", "-",
         f"{t_enabled * 1e3:.1f} ms ({t_enabled / t_disabled:.2f}x)"),
    ])

    assert overhead < MAX_OVERHEAD * t_disabled, (
        f"{n_ops} disabled instrumentation events cost {overhead * 1e3:.3f} ms "
        f"against a {t_disabled * 1e3:.1f} ms render "
        f"({overhead / t_disabled * 100:.2f} % > {MAX_OVERHEAD:.0%})")

    # the persisted trajectory: timings stay noise-tolerant, the
    # instrumentation-event count is deterministic and hard-gated
    persist("obs_overhead", f"render_{N_TASKS}",
            timings_s={"render_disabled": disabled_runs,
                       "render_enabled": enabled_runs,
                       "noop_per_op": [t_noop]},
            metrics={"instrumentation_events": n_ops})

    result = benchmark.pedantic(
        lambda: render_bytes(schedule, "png", lod="off"),
        rounds=3, iterations=1)
    assert result
