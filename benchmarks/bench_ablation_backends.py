"""Ablation — output backend cost on a Figure-13-sized schedule.

The command-line mode exists for batch figure production ("hundreds or
thousands of schedules"), so backend throughput matters.  This ablation
renders the same 834-job, 1024-row schedule with every backend and reports
size and speed; vector formats scale with primitive count, raster formats
with pixel count.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.render.api import OUTPUT_FORMATS, render_drawing
from repro.render.layout import LayoutOptions, layout_schedule
from repro.workloads.bridge import workload_colormap, workload_schedule
from repro.workloads.scheduler import simulate_jobs
from repro.workloads.thunder import (
    THUNDER_NODES,
    THUNDER_RESERVED,
    ThunderSpec,
    generate_thunder_day,
)


def _figure13_drawing():
    spec = ThunderSpec()
    jobs = generate_thunder_day(spec)
    scheduled = simulate_jobs(jobs, THUNDER_NODES, policy="easy",
                              reserved_nodes=THUNDER_RESERVED)
    window = (spec.warmup_seconds, spec.warmup_seconds + spec.day_seconds)
    schedule = workload_schedule(scheduled, THUNDER_NODES, window=window)
    return layout_schedule(schedule, cmap=workload_colormap(),
                           options=LayoutOptions(width=1200, height=700))


@pytest.fixture(scope="module")
def drawing():
    return _figure13_drawing()


@pytest.mark.parametrize("fmt", sorted(OUTPUT_FORMATS))
def test_ablation_backend(benchmark, drawing, fmt):
    data = benchmark(render_drawing, drawing, fmt)
    report(f"Ablation (backend {fmt}, 834-job day)", [
        ("output size", "(format dependent)", f"{len(data):,} bytes"),
        ("primitives", "(shared layout)", str(len(drawing))),
    ])
    assert len(data) > 500
