"""Render service — sustained throughput and request latency.

``jedule serve`` keeps warmed-up render workers resident and feeds them a
stream of jobs over HTTP; the claim is that a *stream* of requests is
served at steady-state render speed (no per-request spawn/import cost)
and that repeat requests collapse to cache hits.  This benchmark drives a
live server end to end — real HTTP, real worker pipes, the shared
content-addressed cache — and measures:

* cold throughput: N distinct jobs (same schedule, distinct render
  options) through a 2-worker server, jobs/second;
* warm throughput: the same N jobs again, all served from the cache;
* request latency percentiles (p50/p95/p99) as reported by ``/statz``,
  persisted into ``BENCH_serve.json`` and gated (warn-only on timings)
  by ``repro.obs.regress`` against the committed baseline.

Job counts and cache outcomes are deterministic and gate hard; wall-clock
numbers vary with runner hardware and gate as warnings.
"""

from __future__ import annotations

from time import perf_counter

from conftest import report

from bench_lod_scaling import synthetic_trace

from repro.render.api import RenderRequest
from repro.serve.client import ServeClient
from repro.serve.server import RenderServer

N_JOBS = 16
N_TASKS = 1_000
WORKERS = 2


def _requests() -> list[RenderRequest]:
    # one schedule, N distinct option fingerprints -> N distinct cache keys
    return [RenderRequest(output_format="svg", width=640, height=400,
                          lod="off", title=f"serve bench {i}")
            for i in range(N_JOBS)]


def _run_wave(client: ServeClient, schedule) -> tuple[float, list[dict]]:
    """Submit every request, then wait for all; returns (seconds, jobs)."""
    started = perf_counter()
    pending = [client.submit(request, schedule=schedule)
               for request in _requests()]
    jobs = [client.wait(doc["id"], timeout=600.0) for doc in pending]
    return perf_counter() - started, jobs


def test_serve_throughput_and_latency(tmp_path):
    schedule = synthetic_trace(N_TASKS, seed=42)
    server = RenderServer(workers=WORKERS, queue_depth=N_JOBS * 2,
                          cache_dir=str(tmp_path / "cache")).start()
    try:
        client = ServeClient(server.url, client_id="bench")
        for index in range(WORKERS):  # spawn cost out of the measurement
            server._pool.worker(index).ping()

        cold_s, cold_jobs = _run_wave(client, schedule)
        warm_s, warm_jobs = _run_wave(client, schedule)
        stats = server.statz_payload()
    finally:
        server.drain()
        assert server.wait(timeout=60)

    cold_done = sum(1 for j in cold_jobs if j["status"] == "done")
    warm_hits = sum(1 for j in warm_jobs
                    if j["status"] == "done" and j["result"]["cache"] == "hit")
    cold_rate = N_JOBS / max(cold_s, 1e-9)
    warm_rate = N_JOBS / max(warm_s, 1e-9)
    latency = stats["latency_s"]

    report("render service throughput", [
        ("jobs per wave", str(N_JOBS), str(N_JOBS)),
        ("workers", str(WORKERS), str(WORKERS)),
        ("cold wave", "-", f"{cold_s * 1e3:.1f} ms"
                           f" ({cold_rate:.1f} jobs/s)"),
        ("warm wave", "-", f"{warm_s * 1e3:.1f} ms"
                           f" ({warm_rate:.1f} jobs/s)"),
        ("latency p50", "-", f"{latency['p50'] * 1e3:.1f} ms"),
        ("latency p95", "-", f"{latency['p95'] * 1e3:.1f} ms"),
        ("latency p99", "-", f"{latency['p99'] * 1e3:.1f} ms"),
        ("warm cache hits", str(N_JOBS), str(warm_hits)),
    ], suite="serve", entry="throughput",
       timings_s={"cold_wave": [cold_s], "warm_wave": [warm_s],
                  "p50": [latency["p50"]], "p95": [latency["p95"]],
                  "p99": [latency["p99"]]},
       metrics={"jobs": N_JOBS, "cold_ok": cold_done,
                "warm_hits": warm_hits,
                "failed": int(stats["counters"].get("serve.jobs.failed", 0)),
                "restarts": stats["workers"]["restarts"]})

    assert cold_done == N_JOBS
    assert warm_hits == N_JOBS
    assert warm_s < cold_s  # the cache tier must actually pay off
    assert latency["count"] == 2 * N_JOBS


def test_serve_backpressure_is_bounded(tmp_path):
    """A full queue answers 429 immediately — submission cost stays flat
    instead of the server buffering unboundedly."""
    from repro.errors import ServeError

    schedule = synthetic_trace(200, seed=7)
    server = RenderServer(workers=1, queue_depth=4,
                          cache_dir=None).start()
    try:
        server.pause_dispatch()
        client = ServeClient(server.url, client_id="flood")
        accepted = 0
        rejected = 0
        started = perf_counter()
        for request in _requests():
            try:
                client.submit(request, schedule=schedule)
                accepted += 1
            except ServeError as exc:
                assert exc.code == "queue-full"
                rejected += 1
        elapsed = perf_counter() - started
        server.resume_dispatch()
    finally:
        server.drain()
        assert server.wait(timeout=60)

    report("render service backpressure", [
        ("queue depth", "4", "4"),
        ("accepted", "4", str(accepted)),
        ("rejected (429)", str(N_JOBS - 4), str(rejected)),
        ("submit burst", "-", f"{elapsed * 1e3:.1f} ms"),
    ], suite="serve", entry="backpressure",
       timings_s={"submit_burst": [elapsed]},
       metrics={"accepted": accepted, "rejected": rejected})
    assert accepted == 4
    assert rejected == N_JOBS - 4
