"""Figure 7 — the heterogeneous 4-cluster platform.

"Two of them comprise four processors running at 1.65 Gflop/s, while the
two other clusters only have two processors running twice as fast
(3.3 Gflop/s).  Each processor has its own communication link.  Processors
within a cluster are interconnected through a switch.  Finally all clusters
are interconnected by a single backbone."

Verifies the topology and the communication-cost structure in both the
flat-backbone (buggy) and realistic descriptions, and times route/cost
evaluation.
"""

from __future__ import annotations

from conftest import report

from repro.platform.builders import FAST_SPEED, SLOW_SPEED, heterogeneous_platform
from repro.platform.network import CommModel, comm_time


def test_figure7_platform(benchmark):
    flat = heterogeneous_platform(flat_backbone=True)
    real = heterogeneous_platform()

    size = 1e6
    local = comm_time(flat, 0, 1, size)
    remote_flat = comm_time(flat, 0, 6, size)
    remote_real = comm_time(real, 0, 6, size)

    report("Figure 7 (heterogeneous platform)", [
        ("clusters", "4", str(len(real.clusters))),
        ("fast clusters", "2 x 2 procs @ 3.3 Gflop/s",
         f"{sum(1 for c in real.clusters if c.speed == FAST_SPEED)} x "
         f"{[c.size for c in real.clusters if c.speed == FAST_SPEED][0]} "
         f"@ {FAST_SPEED / 1e9:.2f}e9"),
        ("slow clusters", "2 x 4 procs @ 1.65 Gflop/s",
         f"{sum(1 for c in real.clusters if c.speed == SLOW_SPEED)} x "
         f"{[c.size for c in real.clusters if c.speed == SLOW_SPEED][0]} "
         f"@ {SLOW_SPEED / 1e9:.2f}e9"),
        ("total processors", "12", str(real.size)),
        ("speed ratio", "2x", f"{FAST_SPEED / SLOW_SPEED:.1f}x"),
        ("intra-cluster 1MB", "(baseline)", f"{local * 1e3:.3f} ms"),
        ("inter-cluster 1MB, flat", "~= intra (the bug)",
         f"{remote_flat * 1e3:.3f} ms"),
        ("inter-cluster 1MB, realistic", ">> intra (the fix)",
         f"{remote_real * 1e3:.3f} ms"),
    ])

    assert real.size == 12
    assert [c.size for c in real.clusters] == [2, 4, 2, 4]
    assert remote_flat < 1.1 * local
    assert remote_real > 2 * local

    comm = CommModel(real)

    def eval_costs():
        total = 0.0
        for a in range(12):
            for b in range(12):
                total += comm.time(a, b, size)
        return total

    benchmark(eval_costs)
