"""Scheduler zoo — deterministic quality metrics for the online schedulers.

Every scheduler of the online/OS families runs on the same seeded Poisson
arrival trace through the registry; the resulting makespan, flow/stretch
and fairness metrics are persisted to ``BENCH_sched_zoo.json`` so the
regression gate catches any behavioural drift in the policies.  Two
ablations ride along: the round-robin quantum sweep (smaller quanta →
fairer but choppier) and the MLFQ feedback-level sweep.
"""

from __future__ import annotations

from conftest import persist, report

from repro.core.slices import validate_slices
from repro.obs.bench import time_min_of_k
from repro.render.api import export_schedule
from repro.sched.registry import JobsProblem, run_scheduler
from repro.workloads.arrivals import poisson_arrivals

#: scheduler name -> options (all explicit, so defaults may evolve freely)
ZOO = {
    "rr": {"cpus": 2, "quantum": 4.0},
    "sjf": {"cpus": 2},
    "mlfq": {"cpus": 2, "levels": 3, "quantum": 2.0, "boost": 60.0},
    "cfs": {"cpus": 2, "latency": 12.0, "min_granularity": 1.5},
    "online-list": {"speeds": "2,1.5,1,1", "eligibility": "gos", "levels": 2},
    "moldable-list": {"alpha": 0.5, "cap": 0.5},
}

_KEEP = ("makespan", "mean_flow", "max_flow", "mean_stretch", "max_stretch",
         "jain_fairness", "preemptions", "slices", "shrunk_jobs")


def _problem() -> JobsProblem:
    return JobsProblem(poisson_arrivals(n=24, rate=0.15, mean_work=15.0,
                                        seed=11), machines=8)


def test_zoo_metrics(artifacts_dir):
    problem = _problem()
    metrics: dict[str, float] = {}
    rows = []
    for name, options in ZOO.items():
        result = run_scheduler(name, problem, **options)
        assert validate_slices(result.schedule) == []
        for key in _KEEP:
            if key in result.metrics:
                metrics[f"{name}.{key}"] = round(result.metrics[key], 9)
        rows.append((name, "(online, no paper figure)",
                     f"makespan {result.metrics['makespan']:.2f}  "
                     f"stretch {result.metrics['mean_stretch']:.2f}"))
        export_schedule(result.schedule,
                        artifacts_dir / f"sched_zoo_{name}.png",
                        width=1000, height=420, auto_colors="job",
                        title=f"{name}: 24 Poisson arrivals")

    # SRPT is flow-optimal on one machine; on 2 CPUs it must still beat RR
    assert metrics["sjf.mean_flow"] < metrics["rr.mean_flow"]

    mlfq_runs = time_min_of_k(
        lambda: run_scheduler("mlfq", problem, **ZOO["mlfq"]), k=5)
    report("Scheduler zoo (online + OS pack)", rows,
           suite="sched_zoo", entry="zoo",
           timings_s={"mlfq_run": mlfq_runs},
           metrics=metrics)


def test_quantum_ablation(artifacts_dir):
    """RR quantum sweep: slices shrink monotonically as the quantum grows."""
    problem = _problem()
    metrics: dict[str, float] = {}
    slices_by_q = []
    for quantum in (1.0, 2.0, 4.0, 8.0, 16.0):
        result = run_scheduler("rr", problem, cpus=2, quantum=quantum)
        key = f"q{quantum:g}"
        metrics[f"{key}.makespan"] = round(result.metrics["makespan"], 9)
        metrics[f"{key}.mean_stretch"] = round(result.metrics["mean_stretch"], 9)
        metrics[f"{key}.slices"] = result.metrics["slices"]
        slices_by_q.append(result.metrics["slices"])
    assert slices_by_q == sorted(slices_by_q, reverse=True)
    persist("sched_zoo", "ablation_quantum", metrics=metrics)


def test_mlfq_levels_ablation(artifacts_dir):
    """MLFQ level sweep: 1 level degenerates to RR, more levels favor
    short jobs (mean stretch must not get worse than the 1-level run)."""
    problem = _problem()
    metrics: dict[str, float] = {}
    stretch_by_levels = {}
    for levels in (1, 2, 3, 4):
        result = run_scheduler("mlfq", problem, cpus=2, levels=levels,
                               quantum=2.0)
        key = f"levels{levels}"
        metrics[f"{key}.makespan"] = round(result.metrics["makespan"], 9)
        metrics[f"{key}.mean_stretch"] = round(result.metrics["mean_stretch"], 9)
        metrics[f"{key}.preemptions"] = result.metrics["preemptions"]
        stretch_by_levels[levels] = result.metrics["mean_stretch"]

    rr = run_scheduler("rr", problem, cpus=2, quantum=2.0)
    assert stretch_by_levels[1] == rr.metrics["mean_stretch"], \
        "1-level MLFQ must degenerate to round-robin"
    persist("sched_zoo", "ablation_levels", metrics=metrics)
