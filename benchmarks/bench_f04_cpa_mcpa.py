"""Figure 4 — CPA vs. MCPA on a load-imbalanced precedence layer.

"One can observe that the CPA algorithm exploits the computational
resources of the cluster better than MCPA.  In case of MCPA, the schedule
contains large holes that correspond to idle CPU time. ... tasks in the
precedence layer have different costs (e.g., tasks 2 and 5), which leads to
a load imbalance. ... For the example shown in Figure 4 the poly-algorithm
MCPA2 generates the same schedule as CPA."

Regenerates the pathological instance, prints the side-by-side comparison
the figure shows, renders both schedules, and verifies the MCPA2 fix.
"""

from __future__ import annotations

from conftest import report

from repro.core.stats import low_utilization_windows, utilization
from repro.dag.generators import imbalanced_layer_dag
from repro.dag.moldable import AmdahlModel
from repro.platform.builders import homogeneous_cluster
from repro.render.api import export_schedule
from repro.sched.cpa import cpa_schedule
from repro.sched.mcpa import mcpa_schedule
from repro.sched.mcpa2 import mcpa2_schedule

MODEL = AmdahlModel(0.02)


def test_figure4_cpa_vs_mcpa(benchmark, artifacts_dir):
    graph = imbalanced_layer_dag(width=30, heavy_factor=12, seed=1)
    platform = homogeneous_cluster(32, 1e9)

    cpa = cpa_schedule(graph, platform, MODEL)
    mcpa = mcpa_schedule(graph, platform, MODEL)
    mcpa2 = mcpa2_schedule(graph, platform, MODEL)

    holes = low_utilization_windows(mcpa.schedule, 4,
                                    min_duration=0.05 * mcpa.makespan)
    report("Figure 4 (CPA vs MCPA, 32-proc homogeneous cluster)", [
        ("CPA makespan", "(shorter schedule)", f"{cpa.makespan:.2f} s"),
        ("MCPA makespan", "(longer, with holes)", f"{mcpa.makespan:.2f} s"),
        ("MCPA/CPA ratio", "> 1 (MCPA loses here)",
         f"{mcpa.makespan / cpa.makespan:.2f}"),
        ("CPA utilization", "(better)", f"{utilization(cpa.schedule):.2f}"),
        ("MCPA utilization", "(worse: idle holes)",
         f"{utilization(mcpa.schedule):.2f}"),
        ("MCPA idle holes (<=4 busy)", "large holes visible", str(len(holes))),
        ("MCPA2 branch", "same schedule as CPA",
         mcpa2.mapping.meta["mcpa2_branch"]),
        ("MCPA2 makespan", f"== CPA ({cpa.makespan:.2f})",
         f"{mcpa2.makespan:.2f} s"),
    ], suite="f04_cpa_mcpa", entry="figure4",
       metrics={"cpa_makespan": cpa.makespan,
                "mcpa_makespan": mcpa.makespan,
                "mcpa2_makespan": mcpa2.makespan,
                "cpa_utilization": utilization(cpa.schedule),
                "mcpa_utilization": utilization(mcpa.schedule),
                "mcpa_idle_holes": len(holes)})

    assert mcpa.makespan > 1.5 * cpa.makespan
    assert utilization(mcpa.schedule) < utilization(cpa.schedule)
    assert holes
    assert mcpa2.mapping.meta["mcpa2_branch"] == "cpa"
    assert abs(mcpa2.makespan - cpa.makespan) < 1e-9

    export_schedule(cpa.schedule, artifacts_dir / "figure04_cpa.png",
                    width=700, height=450, title="CPA")
    export_schedule(mcpa.schedule, artifacts_dir / "figure04_mcpa.png",
                    width=700, height=450, title="MCPA")

    def schedule_both():
        cpa_schedule(graph, platform, MODEL)
        return mcpa_schedule(graph, platform, MODEL)

    benchmark(schedule_both)
