"""Figure 5 — CRA_WORK scheduling four applications on 20 processors.

"Four mixed-parallel applications, each having its own color, are scheduled
on a cluster of 20 processors.  The resource constraints imposed by the
algorithm are respected. ... It also points out that the initial
distribution of the processors among the applications can be too
restrictive.  For instance, processors 17 to 19 are clearly underused."

Also exercises the Section IV backfilling check: "no task is delayed by
this step.  The reduction of the total idle time can also be easily
quantified."
"""

from __future__ import annotations

from conftest import report

from repro.core.colormap import auto_colormap
from repro.core.stats import idle_area, per_host_busy_time
from repro.dag.generators import LayeredDagSpec, layered_dag
from repro.dag.moldable import AmdahlModel
from repro.platform.builders import homogeneous_cluster
from repro.render.api import export_schedule
from repro.sched.backfill import backfill_cra
from repro.sched.cra import cra_schedule
from repro.sched.metrics import jain_fairness, stretches
from repro.sched.cpa import cpa_schedule

MODEL = AmdahlModel(0.05)


def _apps():
    """Four applications of clearly different sizes, so the work-based
    shares differ from an equal split.  The lightest application comes last:
    with mu = 0.5 its share is generous relative to its work, which is what
    leaves the tail processors (17-19) underused in Figure 5."""
    sizes = (26, 18, 12, 8)
    return [layered_dag(LayeredDagSpec(n_tasks=n, layers=4), seed=3 + i,
                        name=f"app{i}") for i, n in enumerate(sizes)]


def test_figure5_cra_work(benchmark, artifacts_dir):
    graphs = _apps()
    platform = homogeneous_cluster(20, 1e9)
    result = cra_schedule(graphs, platform, MODEL, policy="work", mu=0.5)

    # constraint check (the paper's headline use of the visualization)
    violations = 0
    for block, app_result in zip(result.blocks, result.app_results):
        for p in app_result.mapping.placements:
            if not set(p.hosts) <= set(block):
                violations += 1

    busy = per_host_busy_time(result.schedule)
    mean_busy = sum(busy.values()) / len(busy)
    tail_busy = [busy[("0", h)] for h in (17, 18, 19)]

    backfilled = backfill_cra(result, graphs, platform, MODEL)
    idle_before = idle_area(result.schedule)
    idle_after = idle_area(backfilled)
    delayed = sum(1 for t in result.schedule
                  if backfilled.task(t.id).end_time > t.end_time + 1e-9)

    # The list mapper is already tight, so also demonstrate the pass on a
    # loosened schedule (tasks released late, as after a queueing delay):
    # backfilling must recover the slack without delaying anyone.
    from repro.core.model import Schedule
    from repro.sched.backfill import backfill_mapping
    from repro.simulate.executor import SimResult

    app0 = result.app_results[0]
    loose_sched = Schedule(app0.sim.schedule.clusters, meta=app0.sim.schedule.meta)
    loose_start, loose_finish = {}, {}
    for t in app0.sim.schedule:
        nt = t.shifted(app0.sim.start[t.id] * 0.5 + 0.2)
        loose_sched.add_task(nt)
        loose_start[t.id], loose_finish[t.id] = nt.start_time, nt.end_time
    loose = SimResult(loose_sched, loose_start, loose_finish)
    recompacted = backfill_mapping(graphs[0], app0.mapping, loose,
                                   platform, MODEL)
    loose_delayed = sum(
        1 for v in loose_start
        if recompacted.finish[v] > loose_finish[v] + 1e-9)

    dedicated = [cpa_schedule(g, platform, MODEL).makespan for g in graphs]
    contended = [r.sim.schedule.end_time for r in result.app_results]
    app_stretches = stretches(contended, dedicated)

    report("Figure 5 (CRA_WORK, 4 apps on 20 processors)", [
        ("applications", "4", str(len(result.app_results))),
        ("processors", "20", str(sum(result.shares))),
        ("shares", "work-proportional",
         "/".join(str(x) for x in result.shares)),
        ("constraint violations", "0 (respected)", str(violations)),
        ("tail procs 17-19 busy vs mean", "clearly underused",
         f"{min(tail_busy):.2f} vs {mean_busy:.2f} s"),
        ("stretches", ">= 1, ideally equal",
         "/".join(f"{s:.2f}" for s in app_stretches)),
        ("stretch fairness (Jain)", "-> 1 is fair",
         f"{jain_fairness(app_stretches):.3f}"),
        ("backfill: tasks delayed", "0 (conservative)", str(delayed)),
        ("backfill: idle reduction", "quantifiable",
         f"{idle_before:.1f} -> {idle_after:.1f} host*s"),
        ("backfill on loose schedule", "recovers slack, delays 0",
         f"makespan {loose.schedule.makespan:.2f} -> "
         f"{recompacted.schedule.makespan:.2f} s, delayed {loose_delayed}"),
    ], suite="f05_cra", entry="figure5",
       metrics={"constraint_violations": violations,
                "max_stretch": max(app_stretches),
                "jain_fairness": jain_fairness(app_stretches),
                "idle_before_backfill": idle_before,
                "idle_after_backfill": idle_after,
                "backfill_delayed_tasks": delayed})

    assert violations == 0
    assert min(tail_busy) < mean_busy
    assert delayed == 0
    assert idle_after <= idle_before + 1e-9
    assert loose_delayed == 0
    assert recompacted.schedule.makespan < loose.schedule.makespan

    cmap = auto_colormap(result.schedule)  # one color per application
    export_schedule(result.schedule, artifacts_dir / "figure05_cra.png",
                    cmap=cmap, width=800, height=450, title="CRA_WORK")
    export_schedule(backfilled, artifacts_dir / "figure05_cra_backfilled.png",
                    cmap=cmap, width=800, height=450,
                    title="CRA_WORK + backfilling")

    benchmark(cra_schedule, graphs, platform, MODEL)
