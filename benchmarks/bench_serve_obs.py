"""Render service observability — tracing/metrics overhead budget.

PR-over-PR the serve path gained per-request tracing (trace id threading,
worker span capture, cross-process stitching) and a Prometheus metrics
registry on the hot path (histogram observe per stage, counter per
event).  The claim: all of it rides inside the existing request lifecycle
and costs < 3% wall-clock on a render-bound stream of jobs.

Two identical servers, caches off so every job really renders: one with
``trace_jobs=True`` (stitching + /metricz live, the default), one with
``trace_jobs=False``.  The same wave of jobs goes through both; the
overhead ratio is persisted warn-only (wall clock varies per runner)
while job counts, stage-histogram totals and the /metricz parse-back gate
hard.
"""

from __future__ import annotations

from time import perf_counter

from conftest import report

from bench_lod_scaling import synthetic_trace

from repro.render.api import RenderRequest
from repro.serve.client import ServeClient
from repro.serve.metrics import parse_prometheus_text
from repro.serve.server import RenderServer

N_JOBS = 12
N_TASKS = 800
WORKERS = 2
REPEATS = 2             # best-of waves, to damp runner noise
OVERHEAD_BUDGET = 1.03  # advisory: instrumented <= 3% over bare


def _requests() -> list[RenderRequest]:
    return [RenderRequest(output_format="svg", width=640, height=400,
                          lod="off", title=f"serve obs bench {i}")
            for i in range(N_JOBS)]


def _run_wave(server: RenderServer, *, repeats: int = REPEATS
              ) -> tuple[float, int, dict]:
    """Best-of-``repeats`` waves of N_JOBS; (seconds, ok-per-wave, statz)."""
    schedule = synthetic_trace(N_TASKS, seed=42)
    client = ServeClient(server.url, client_id="bench-obs")
    for index in range(WORKERS):  # spawn cost out of the measurement
        server._pool.worker(index).ping()
    best, ok = float("inf"), 0
    for _ in range(repeats):
        started = perf_counter()
        pending = [client.submit(request, schedule=schedule)
                   for request in _requests()]
        jobs = [client.wait(doc["id"], timeout=600.0) for doc in pending]
        best = min(best, perf_counter() - started)
        ok = sum(1 for j in jobs if j["status"] == "done")
    return best, ok, server.statz_payload()


def test_tracing_and_metrics_overhead():
    traced = RenderServer(workers=WORKERS, queue_depth=N_JOBS * 2,
                          cache_dir=None, trace_jobs=True).start()
    try:
        traced_s, traced_ok, _ = _run_wave(traced)
        client = ServeClient(traced.url, client_id="bench-obs")
        metricz = client.metricz()
    finally:
        traced.drain()
        assert traced.wait(timeout=60)

    bare = RenderServer(workers=WORKERS, queue_depth=N_JOBS * 2,
                        cache_dir=None, trace_jobs=False).start()
    try:
        bare_s, bare_ok, _ = _run_wave(bare)
    finally:
        bare.drain()
        assert bare.wait(timeout=60)

    parsed = parse_prometheus_text(metricz)
    stage_counts = {
        dict(key)["stage"]: value
        for key, value in parsed["jedule_serve_stage_seconds_count"].items()
    }
    jobs_ok = parsed["jedule_serve_jobs_total"][(("status", "ok"),)]
    overhead = traced_s / max(bare_s, 1e-9)

    total_jobs = N_JOBS * REPEATS
    report("serve tracing/metrics overhead", [
        ("jobs per wave", str(N_JOBS), str(N_JOBS)),
        ("bare wave (best)", "-", f"{bare_s * 1e3:.1f} ms"),
        ("traced wave (best)", "-", f"{traced_s * 1e3:.1f} ms"),
        ("overhead", f"<= {OVERHEAD_BUDGET:.2f}x", f"{overhead:.3f}x"),
        ("stage samples (worker)", str(total_jobs),
         str(int(stage_counts.get("worker", 0)))),
        ("/metricz families", ">= 8", str(len(parsed))),
    ], suite="serve_obs", entry="overhead",
       timings_s={"bare_wave": [bare_s], "traced_wave": [traced_s],
                  "overhead_ratio": [overhead]},
       metrics={"jobs": N_JOBS, "traced_ok": traced_ok, "bare_ok": bare_ok,
                "metricz_jobs_ok": int(jobs_ok),
                "stage_samples": int(stage_counts.get("worker", 0))})

    assert traced_ok == N_JOBS and bare_ok == N_JOBS
    assert jobs_ok == float(total_jobs)
    # every finished job feeds every pipeline stage exactly once
    for stage in ("queue_wait", "worker", "total"):
        assert stage_counts.get(stage) == float(total_jobs), \
            (stage, stage_counts)
    # wall-clock ratio is advisory here; the regress gate warns on drift
    assert overhead < 2.0, f"tracing overhead blew up: {overhead:.2f}x"
